// Package metrics records training curves and computes the paper's
// evaluation quantities: best metric, epochs-to-target and (together with
// the throughput model) time-to-target.
package metrics

import "math"

// Run records one training run's per-epoch measurements.
type Run struct {
	Name      string
	Loss      []float64 // train loss per epoch
	Metric    []float64 // test accuracy (%) or BLEU per epoch
	ParamNorm []float64 // global parameter norm per epoch (divergence probe)
	Diverged  bool
}

// Record appends one epoch's measurements.
func (r *Run) Record(loss, metric, paramNorm float64) {
	r.Loss = append(r.Loss, loss)
	r.Metric = append(r.Metric, metric)
	r.ParamNorm = append(r.ParamNorm, paramNorm)
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		r.Diverged = true
	}
}

// Best returns the best (max) metric over the run, or 0 for an empty run.
func (r *Run) Best() float64 {
	best := 0.0
	for _, m := range r.Metric {
		if m > best {
			best = m
		}
	}
	return best
}

// EpochsToTarget returns the 1-based epoch at which the metric first
// reaches target, or -1 if it never does.
func (r *Run) EpochsToTarget(target float64) int {
	for i, m := range r.Metric {
		if m >= target {
			return i + 1
		}
	}
	return -1
}

// Epochs returns the number of recorded epochs.
func (r *Run) Epochs() int { return len(r.Metric) }

// TimeToTarget converts epochs-to-target into normalized time given a
// per-epoch throughput model: warmupEpochs run at warmupThroughput and the
// rest at mainThroughput (throughputs are relative to a bubble-free
// pipeline = 1.0). It returns +Inf when the target is never reached.
func TimeToTarget(epochsToTarget, warmupEpochs int, warmupThroughput, mainThroughput float64) float64 {
	if epochsToTarget < 0 {
		return math.Inf(1)
	}
	w := warmupEpochs
	if w > epochsToTarget {
		w = epochsToTarget
	}
	rest := epochsToTarget - w
	return float64(w)/warmupThroughput + float64(rest)/mainThroughput
}

// AmortizedThroughput returns total epochs divided by total normalized
// time, the quantity reported in the paper's Tables 2–3 throughput column
// for runs with synchronous warmup.
func AmortizedThroughput(totalEpochs, warmupEpochs int, warmupThroughput, mainThroughput float64) float64 {
	t := TimeToTarget(totalEpochs, warmupEpochs, warmupThroughput, mainThroughput)
	if math.IsInf(t, 1) || t == 0 {
		return 0
	}
	return float64(totalEpochs) / t
}

// Speedup returns timeBaseline / time, the paper's "Speedup to Target"
// column; it is 0 when time is infinite.
func Speedup(timeBaseline, time float64) float64 {
	if math.IsInf(time, 1) {
		return 0
	}
	return timeBaseline / time
}
