package transport

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"time"
)

// Msg is one reassembled protocol message: a frame header's routing
// fields plus the concatenated payload of its chunks.
type Msg struct {
	Type    byte
	Replica uint16
	Stage   int32
	Data    []byte
}

// MsgConn is the message-level connection surface: everything above the
// framing layer (RemoteMember, the serve loop) speaks it, so a fault
// injector (internal/faults) or any other middleware can wrap a *Conn
// without the protocol code noticing.
type MsgConn interface {
	// Send writes one message, honoring ctx.
	Send(ctx context.Context, m Msg) error
	// Recv reads one message, honoring ctx.
	Recv(ctx context.Context) (Msg, error)
	// Close closes the connection, unblocking in-flight I/O.
	Close() error
	// LocalAddr names the connection's local end.
	LocalAddr() string
}

// Conn frames messages over a byte stream. Both transports produce one:
// loopback wraps an in-process net.Pipe end, TCP a real socket — both
// support deadlines, which is how context cancellation propagates into
// every blocking read and write (see Send/Recv).
//
// A Conn is not safe for concurrent use; callers (RemoteMember, the
// serve loop) serialize access.
type Conn struct {
	nc  net.Conn
	r   *bufio.Reader
	w   *bufio.Writer
	buf []byte // frame scratch
}

// NewConn frames messages over nc. nc must honor SetDeadline (net.Pipe
// and TCP connections both do).
func NewConn(nc net.Conn) *Conn {
	return &Conn{nc: nc, r: bufio.NewReaderSize(nc, 64<<10), w: bufio.NewWriterSize(nc, 64<<10)}
}

// Close closes the underlying connection, unblocking any in-flight read
// or write on it.
func (c *Conn) Close() error { return c.nc.Close() }

// LocalAddr names the connection's local end.
func (c *Conn) LocalAddr() string { return c.nc.LocalAddr().String() }

// arm applies ctx to the connection: an existing deadline maps to a
// connection deadline, and cancellation forces an immediate one so any
// blocked read/write unwinds with a timeout error. The returned stop
// function releases the watcher; mapErr rewrites the resulting I/O error
// to ctx.Err() once the context is done, so callers see cancellation,
// not a spurious timeout.
func (c *Conn) arm(ctx context.Context) (stop func(), err error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	deadline := time.Time{}
	if d, ok := ctx.Deadline(); ok {
		deadline = d
	}
	// A closed-connection report is NOT an arm failure: net.Pipe surfaces
	// the PEER's close here, and a frame already buffered — the leader's
	// goodbye in particular — must still drain. I/O on a closed connection
	// cannot block, so losing the deadline is safe, and the operation
	// itself reports the connection's real state.
	if err := c.nc.SetDeadline(deadline); err != nil &&
		!errors.Is(err, io.ErrClosedPipe) && !errors.Is(err, net.ErrClosed) {
		return nil, fmt.Errorf("transport: set deadline: %w", err)
	}
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		select {
		case <-ctx.Done():
			// Unblock the pending I/O immediately. If the connection refuses
			// the forced deadline, closing it is the only remaining way to
			// guarantee the blocked read or write unwinds.
			if err := c.nc.SetDeadline(time.Unix(1, 0)); err != nil {
				c.nc.Close()
			}
		case <-done:
		}
	}()
	// stop joins the watcher: a cancellation racing the operation's
	// completion must land its past-deadline before stop returns, or it
	// would clobber the deadline the NEXT operation arms (e.g. a dial
	// context canceled right after a successful handshake poisoning the
	// first collective).
	return func() { close(done); <-exited }, nil
}

func mapErr(ctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		if _, hasDeadline := ctx.Deadline(); hasDeadline {
			// The connection deadline mirrors the context deadline, and its
			// timer can fire a hair before the context's own. Wait out the
			// skew so callers always see the context error.
			<-ctx.Done()
			return ctx.Err()
		}
	}
	return err
}

// Send writes one message, splitting payloads larger than the chunk size
// into consecutive frames with the more-flag set on all but the last.
// The write is context-aware: cancellation or a context deadline unwinds
// a blocked write.
func (c *Conn) Send(ctx context.Context, m Msg) error {
	stop, err := c.arm(ctx)
	if err != nil {
		return err
	}
	defer stop()
	h := Header{Type: m.Type, Replica: m.Replica, Stage: m.Stage}
	data := m.Data
	for {
		chunk := data
		if len(chunk) > maxChunk {
			chunk = chunk[:maxChunk]
		}
		data = data[len(chunk):]
		h.Flags = 0
		if len(data) > 0 {
			h.Flags = flagMore
		}
		c.buf = AppendFrame(c.buf[:0], h, chunk)
		if _, err := c.w.Write(c.buf); err != nil {
			return mapErr(ctx, fmt.Errorf("transport: write frame: %w", err))
		}
		if len(data) == 0 {
			break
		}
	}
	if err := c.w.Flush(); err != nil {
		return mapErr(ctx, fmt.Errorf("transport: flush: %w", err))
	}
	return nil
}

// Recv reads one message, reassembling chunked frames and verifying each
// frame's magic, version, bounds and CRC. The read is context-aware:
// cancellation or a context deadline unwinds a blocked read. Malformed
// input returns an error, never a panic.
func (c *Conn) Recv(ctx context.Context) (Msg, error) {
	stop, err := c.arm(ctx)
	if err != nil {
		return Msg{}, err
	}
	defer stop()
	var m Msg
	first := true
	for {
		h, payload, err := c.readFrame()
		if err != nil {
			return Msg{}, mapErr(ctx, err)
		}
		if first {
			m = Msg{Type: h.Type, Replica: h.Replica, Stage: h.Stage}
			first = false
		} else if h.Type != m.Type || h.Replica != m.Replica || h.Stage != m.Stage {
			return Msg{}, fmt.Errorf("transport: chunk header mismatch: type %d/%d", h.Type, m.Type)
		}
		if len(m.Data)+len(payload) > maxMsg {
			return Msg{}, fmt.Errorf("transport: message exceeds %d bytes", maxMsg)
		}
		m.Data = append(m.Data, payload...)
		if !h.More() {
			return m, nil
		}
	}
}

var _ MsgConn = (*Conn)(nil)

// readFrame reads and validates one frame from the stream.
func (c *Conn) readFrame() (Header, []byte, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return Header{}, nil, fmt.Errorf("transport: read frame header: %w", err)
	}
	_, n, err := parseHeader(hdr[:])
	if err != nil {
		return Header{}, nil, err
	}
	need := n + trailerLen
	if cap(c.buf) < headerLen+need {
		c.buf = make([]byte, headerLen+need)
	}
	c.buf = c.buf[:headerLen+need]
	copy(c.buf, hdr[:])
	if _, err := io.ReadFull(c.r, c.buf[headerLen:]); err != nil {
		return Header{}, nil, fmt.Errorf("transport: read frame payload: %w", err)
	}
	hh, payload, _, err := DecodeFrame(c.buf)
	if err != nil {
		return Header{}, nil, err
	}
	return hh, payload, nil
}
