package transport

import (
	"fmt"

	"pipemare/internal/tensor"
)

// Exported payload codec. The checkpoint writer (internal/core) encodes
// trainer state with the exact primitives the wire uses — big-endian
// integers, raw IEEE-754 float bits, counted tensor lists — so a
// checkpoint file round-trips state as bit-exactly as a collective does.

// AppendU32 appends a big-endian uint32.
func AppendU32(dst []byte, v uint32) []byte { return appendU32(dst, v) }

// AppendU64 appends a big-endian uint64.
func AppendU64(dst []byte, v uint64) []byte { return appendU64(dst, v) }

// AppendF64 appends the raw IEEE-754 bits of v.
func AppendF64(dst []byte, v float64) []byte { return appendF64(dst, v) }

// AppendBool appends one byte, 1 for true.
func AppendBool(dst []byte, v bool) []byte { return appendBool(dst, v) }

// AppendTensor appends one tensor (rank, dims, raw float bits).
func AppendTensor(dst []byte, t *tensor.Tensor) []byte { return appendTensor(dst, t) }

// AppendTensors appends a counted tensor list.
func AppendTensors(dst []byte, ts []*tensor.Tensor) []byte { return appendTensors(dst, ts) }

// Cursor reads a payload left to right, latching the first error — the
// exported face of the wire decoder for checkpoint readers.
type Cursor struct{ c cursor }

// NewCursor reads b.
func NewCursor(b []byte) *Cursor { return &Cursor{c: cursor{b: b}} }

// U32 decodes a big-endian uint32.
func (r *Cursor) U32() uint32 { return r.c.u32() }

// U64 decodes a big-endian uint64.
func (r *Cursor) U64() uint64 { return r.c.u64() }

// F64 decodes raw IEEE-754 bits.
func (r *Cursor) F64() float64 { return r.c.f64() }

// Bool decodes one byte as a bool.
func (r *Cursor) Bool() bool { return r.c.boolean() }

// I32 decodes a u32 written from a signed int back to that int.
func (r *Cursor) I32() int { return r.c.i32() }

// Count decodes a bounded element count (each element needs at least
// min remaining bytes).
func (r *Cursor) Count(min int) int { return r.c.count(min) }

// TensorsInto decodes a counted tensor list, reusing bufs elementwise.
func (r *Cursor) TensorsInto(bufs []*tensor.Tensor) []*tensor.Tensor { return r.c.tensorsInto(bufs) }

// Rest returns the undecoded remainder.
func (r *Cursor) Rest() []byte { return r.c.b }

// Err returns the latched decode error, if any.
func (r *Cursor) Err() error { return r.c.err }

// Done errors unless the payload decoded exactly.
func (r *Cursor) Done() error { return r.c.done() }

// AppendMessage appends one message to dst as wire frames: payloads
// larger than the chunk size split with the more-flag, mirroring
// Conn.Send, so a checkpoint file is byte-for-byte a valid frame stream
// (magic, version, CRC per frame).
func AppendMessage(dst []byte, h Header, payload []byte) []byte {
	for {
		chunk := payload
		if len(chunk) > maxChunk {
			chunk = chunk[:maxChunk]
		}
		payload = payload[len(chunk):]
		h.Flags = 0
		if len(payload) > 0 {
			h.Flags = flagMore
		}
		dst = AppendFrame(dst, h, chunk)
		if len(payload) == 0 {
			return dst
		}
	}
}

// NextMessage decodes the next message from a frame stream produced by
// AppendMessage, reassembling chunked frames and verifying each frame's
// magic, version, bounds and CRC. It returns the header, the payload
// (copied out when chunked, a sub-slice of b otherwise), and the
// remainder of b after the message.
func NextMessage(b []byte) (Header, []byte, []byte, error) {
	var m Msg
	first := true
	for {
		h, payload, rest, err := DecodeFrame(b)
		if err != nil {
			return Header{}, nil, nil, err
		}
		b = rest
		if first {
			if !h.More() {
				return h, payload, b, nil
			}
			m = Msg{Type: h.Type, Replica: h.Replica, Stage: h.Stage}
			first = false
		} else if h.Type != m.Type || h.Replica != m.Replica || h.Stage != m.Stage {
			return Header{}, nil, nil, fmt.Errorf("transport: chunk header mismatch: type %d/%d", h.Type, m.Type)
		}
		if len(m.Data)+len(payload) > maxMsg {
			return Header{}, nil, nil, fmt.Errorf("transport: message exceeds %d bytes", maxMsg)
		}
		m.Data = append(m.Data, payload...)
		if !h.More() {
			return Header{Type: m.Type, Replica: m.Replica, Stage: m.Stage}, m.Data, b, nil
		}
	}
}
