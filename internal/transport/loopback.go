package transport

import (
	"context"
	"fmt"
	"net"
	"sync"
)

// Dialer connects to a remote member host. Implementations: the loopback
// half of Loopback, and TCPDialer.
type Dialer interface {
	// Dial establishes a framed connection, honoring ctx for cancellation
	// and deadline.
	Dial(ctx context.Context) (MsgConn, error)
}

// Listener accepts framed connections. Implementations: the loopback
// half of Loopback, and the TCP listener from ListenTCP.
type Listener interface {
	// Accept waits for one connection, honoring ctx.
	Accept(ctx context.Context) (MsgConn, error)
	// Addr names the listening endpoint (a dialable address for TCP).
	Addr() string
	// Close releases the listener; blocked Accepts return an error.
	Close() error
}

// loopback is the in-process transport: Dial hands one end of a
// net.Pipe to a pending Accept. It keeps every bit-identity test — and
// the full remote-member protocol — runnable with zero network, while
// exercising exactly the serialization path TCP uses (net.Pipe supports
// deadlines, so context propagation is identical).
type loopback struct {
	ch     chan net.Conn
	closed chan struct{}
	once   sync.Once
}

// Loopback returns a connected in-process listener/dialer pair.
func Loopback() (Listener, Dialer) {
	l := &loopback{ch: make(chan net.Conn), closed: make(chan struct{})}
	return l, l
}

// Dial hands the accept side one pipe end and frames the other.
func (l *loopback) Dial(ctx context.Context) (MsgConn, error) {
	a, b := net.Pipe()
	select {
	case l.ch <- b:
		return NewConn(a), nil
	case <-l.closed:
		a.Close()
		b.Close()
		return nil, fmt.Errorf("transport: loopback closed")
	case <-ctx.Done():
		a.Close()
		b.Close()
		return nil, ctx.Err()
	}
}

// Accept waits for a Dial.
func (l *loopback) Accept(ctx context.Context) (MsgConn, error) {
	select {
	case nc := <-l.ch:
		return NewConn(nc), nil
	case <-l.closed:
		return nil, fmt.Errorf("transport: loopback closed")
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Addr names the transport.
func (l *loopback) Addr() string { return "loopback" }

// Close unblocks pending Accepts and Dials.
func (l *loopback) Close() error {
	l.once.Do(func() { close(l.closed) })
	return nil
}
