package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"pipemare/internal/engine"
	"pipemare/internal/replica"
	"pipemare/internal/tensor"
	"pipemare/internal/trace"
)

// LeaderState is what RemoteMember reads from the local leader replica
// to serve the leader-originated syncs: the per-stage post-step state
// for the full broadcast, and the step/epoch clocks. The trainer's host
// (internal/core) satisfies it.
type LeaderState interface {
	StateSource
	Step() int
	Epoch() int
}

// RemoteMember is the leader-side proxy for a follower replica hosted in
// another process (or another goroutine, over the loopback transport).
// It implements replica.Member — the collective surface replica.Group
// drives for the reduce, sharded commit and broadcast — plus
// replica.Runner, so the replicated engine ships the follower's
// microbatch chunk to the worker as one message instead of driving the
// pipeline slots over the wire.
//
// Transport failures are sticky: the first I/O error poisons the member,
// every subsequent operation fails fast, and replica.Group surfaces the
// error through the engine to Trainer.Run. A diverged chunk is a normal
// reply, not a fault.
type RemoteMember struct {
	conn    MsgConn
	replica int
	stages  int
	lead    LeaderState
	hb      time.Duration // heartbeat interval (0 disables the liveness window)

	mu     sync.Mutex
	ctx    context.Context // bound per minibatch (BindContext); Background otherwise
	err    error           // sticky transport error
	closed bool
	jit    uint64 // deterministic retry-jitter state (per-member LCG)

	// Straggler accounting (WithStragglerPolicy). sdl is the per-chunk
	// collective deadline and sk the consecutive-miss budget; misses
	// counts expired deadline windows across chunks, resetting whenever a
	// chunk replies within its first window. ready reports that a demoted
	// member's late in-flight reply has been drained and discarded, so
	// the standby can rejoin (replica.Standby).
	sdl      time.Duration
	sk       int
	misses   int
	ready    bool
	draining bool

	losses  []float64
	grads   [][][]*tensor.Tensor
	states  [][]*tensor.Tensor // per-stage StageState decode buffers
	scratch []byte

	// tk is the member's wire track (nil when tracing is off). Every
	// post-handshake round-trip runs under m.mu, so the track has a
	// single writer by construction.
	tk *trace.Track
}

// NewRemoteMember dials nothing — conn is already established — but runs
// the handshake: it announces spec, waits for the worker's verdict, and
// returns the proxy on MsgHelloOK. lead is the local leader replica the
// proxy reads when serving SyncEpoch/SyncFromLeader.
func NewRemoteMember(ctx context.Context, conn MsgConn, spec Spec, lead LeaderState) (*RemoteMember, error) {
	m := newMember(conn, spec, lead)
	resp, err := m.roundTrip(ctx, Msg{Type: MsgHello, Replica: uint16(spec.Replica), Stage: -1, Data: spec.encode()})
	if err != nil {
		return nil, fmt.Errorf("transport: handshake with replica %d: %w", spec.Replica, err)
	}
	if resp.Type != MsgHelloOK {
		return nil, fmt.Errorf("transport: handshake with replica %d: unexpected reply type %d", spec.Replica, resp.Type)
	}
	return m, nil
}

// newMember builds the proxy without running any handshake — shared by
// NewRemoteMember (the MsgHello path) and the join admission path, whose
// handshake (MsgWelcome/MsgJoinOK) the caller runs itself.
func newMember(conn MsgConn, spec Spec, lead LeaderState) *RemoteMember {
	return &RemoteMember{
		conn:    conn,
		replica: spec.Replica,
		stages:  spec.Stages,
		lead:    lead,
		hb:      spec.Heartbeat,
		ctx:     context.Background(),
		jit:     uint64(spec.Replica)*0x9E3779B97F4A7C15 + 1,
		states:  make([][]*tensor.Tensor, spec.Stages),
	}
}

// SetStragglerDeadline arms the straggler policy on this member: a chunk
// whose reply misses k consecutive deadline windows of d demotes the
// member (RunChunk returns an error wrapping replica.ErrStraggler
// without poisoning it). d ≤ 0 or k ≤ 0 disables the policy.
func (m *RemoteMember) SetStragglerDeadline(d time.Duration, k int) {
	m.mu.Lock()
	m.sdl, m.sk = d, k
	m.mu.Unlock()
}

// Ready reports that a demoted member has drained its late in-flight
// reply and can rejoin (replica.Standby). A member whose drain failed is
// never ready; its sticky error tells the standby pool to drop it.
func (m *RemoteMember) Ready() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ready && !m.draining && m.err == nil
}

// Rearm resets the straggler accounting before readmission
// (replica.Standby).
func (m *RemoteMember) Rearm() {
	m.mu.Lock()
	m.misses, m.ready = 0, false
	m.mu.Unlock()
}

// SetTracer attaches a trace recorder: every subsequent round-trip is
// recorded as a span on the member's wire track (with the message's
// payload bytes both ways), transient-send retries and consumed
// heartbeat pings as instants. Call it once, right after the handshake,
// before the member is handed to the replica group.
func (m *RemoteMember) SetTracer(rec *trace.Recorder) {
	m.mu.Lock()
	m.tk = rec.Track(m.replica, trace.TidWire, "wire")
	m.mu.Unlock()
}

// wireName maps a request type to its interned wire-span name.
func wireName(typ byte) string {
	switch typ {
	case MsgHello:
		return "wire:hello"
	case MsgRunChunk:
		return "wire:chunk"
	case MsgSetGrads:
		return "wire:set-grads"
	case MsgPrepare:
		return "wire:prepare"
	case MsgBeginStep:
		return "wire:begin-step"
	case MsgScale:
		return "wire:scale"
	case MsgStep:
		return "wire:step"
	case MsgFinish:
		return "wire:finish"
	case MsgGetState:
		return "wire:get-state"
	case MsgSetState:
		return "wire:set-state"
	case MsgSyncEpoch:
		return "wire:sync-epoch"
	case MsgSync:
		return "wire:sync"
	case MsgSetRing:
		return "wire:set-ring"
	case MsgWelcome:
		return "wire:welcome"
	default:
		return "wire:other"
	}
}

// BindContext binds the context every subsequent wire operation uses for
// cancellation and deadline — replica.Group calls it at minibatch Begin,
// so a cancel mid-collective unwinds each blocked read/write.
func (m *RemoteMember) BindContext(ctx context.Context) {
	m.mu.Lock()
	if ctx == nil {
		ctx = context.Background()
	}
	m.ctx = ctx
	m.mu.Unlock()
}

// Err returns the sticky transport error, if any (replica.Erring).
func (m *RemoteMember) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// Close says goodbye (best effort) and closes the connection. Further
// Closes are no-ops. When an in-flight collective holds the member lock
// — blocked on a slow or hung peer — Close does not wait behind it: it
// closes the connection first, which unblocks the collective's read or
// write with an I/O error, then latches the closed state.
func (m *RemoteMember) Close() error {
	if !m.mu.TryLock() {
		err := m.conn.Close()
		m.mu.Lock()
		defer m.mu.Unlock()
		m.closed = true
		if m.err == nil {
			m.err = errors.New("transport: member closed")
		}
		return err
	}
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	if m.err == nil {
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		m.conn.Send(ctx, Msg{Type: MsgBye, Replica: uint16(m.replica), Stage: -1})
		cancel()
	}
	m.err = errors.New("transport: member closed")
	return m.conn.Close()
}

// roundTrip sends one request and reads its reply without the sticky
// error machinery (the handshake uses it directly). Transient send
// failures — the request provably never left this process — retry with
// bounded exponential backoff and deterministic per-member jitter; a
// resend after such a failure is invisible to the peer, so the curve is
// untouched. Any failure after the request is on the wire is final: the
// peer's state is unknown.
func (m *RemoteMember) roundTrip(ctx context.Context, req Msg) (Msg, error) {
	t0 := m.tk.Now()
	for attempt := 0; ; attempt++ {
		if err := m.conn.Send(ctx, req); err != nil {
			if IsTransient(err) && attempt < retryAttempts {
				m.tk.Instant(trace.NameRetry, int(req.Stage), -1, int64(len(req.Data)))
				if serr := m.backoff(ctx, attempt); serr != nil {
					return Msg{}, serr
				}
				continue
			}
			return Msg{}, err
		}
		resp, err := m.recvReply(ctx)
		if err != nil {
			return Msg{}, err
		}
		if resp.Type == MsgErr {
			return Msg{}, decodeWireErr(resp.Data)
		}
		m.tk.Span(wireName(req.Type), t0, int(req.Stage), -1, int64(len(req.Data)+len(resp.Data)))
		return resp, nil
	}
}

// recvReply reads the next reply, consuming interleaved heartbeat pings.
// With heartbeats enabled, each read runs under a liveness window of
// heartbeatMisses intervals: a peer that neither replies nor pings
// within it is declared hung (ErrPeerTimeout) instead of waited on
// forever.
func (m *RemoteMember) recvReply(ctx context.Context) (Msg, error) {
	for {
		rctx := ctx
		var cancel context.CancelFunc
		if m.hb > 0 {
			rctx, cancel = context.WithTimeout(ctx, m.hb*heartbeatMisses)
		}
		resp, err := m.conn.Recv(rctx)
		if cancel != nil {
			cancel()
		}
		if err != nil {
			if m.hb > 0 && ctx.Err() == nil && errors.Is(err, context.DeadlineExceeded) {
				return Msg{}, fmt.Errorf("%w: replica %d silent for %v", ErrPeerTimeout, m.replica, m.hb*heartbeatMisses)
			}
			return Msg{}, err
		}
		if resp.Type == MsgPing {
			m.tk.Instant(trace.NameHeartbeat, -1, -1, 0)
			continue
		}
		return resp, nil
	}
}

// backoff sleeps for the attempt's retry delay (exponential from
// retryBase, plus deterministic jitter from the member's LCG — no
// global RNG, so retries cannot perturb run determinism), honoring ctx.
func (m *RemoteMember) backoff(ctx context.Context, attempt int) error {
	d := retryBase << attempt
	m.jit = m.jit*6364136223846793005 + 1442695040888963407
	d += time.Duration(m.jit>>33) % (d/2 + 1)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// call is the request/response engine for member operations: serialized
// per connection, sticky on transport failure, with the bound context
// applied to both the write and the read. A diverged reply passes
// through as engine.ErrDiverged without poisoning the member.
func (m *RemoteMember) call(req Msg, want byte) (Msg, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return Msg{}, m.err
	}
	req.Replica = uint16(m.replica)
	resp, err := m.roundTrip(m.ctx, req)
	if err != nil {
		if errors.Is(err, engine.ErrDiverged) {
			return Msg{}, err
		}
		m.err = fmt.Errorf("transport: replica %d: %w", m.replica, err)
		return Msg{}, m.err
	}
	if resp.Type != want {
		m.err = fmt.Errorf("transport: replica %d: reply type %d to request %d, want %d", m.replica, resp.Type, req.Type, want)
		return Msg{}, m.err
	}
	return resp, nil
}

func decodeWireErr(data []byte) error {
	c := &cursor{b: data}
	code := c.u32()
	text := string(c.b)
	if c.err != nil {
		return fmt.Errorf("malformed error reply")
	}
	if code == errDiverged {
		return engine.ErrDiverged
	}
	return fmt.Errorf("worker: %s", text)
}

// RunChunk ships the follower's share of a minibatch to the worker: the
// chunk's global microbatch base, the leader's epoch phase, and the
// sample indices. The worker drives the chunk through its own inner
// engine and replies with the per-microbatch losses and the exported
// per-(microbatch, stage) gradients (replica.Runner).
func (m *RemoteMember) RunChunk(ctx context.Context, start int, async bool, micros [][]int) ([]float64, [][][]*tensor.Tensor, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return nil, nil, m.err
	}
	if m.draining || m.ready {
		// A late reply from a previous demotion is (or was) still on the
		// wire and the drainer owns the connection's read side: fail fast
		// with another straggle instead of racing it. Rearm clears this
		// state at readmission.
		return nil, nil, fmt.Errorf("%w: replica %d still draining a late chunk", replica.ErrStraggler, m.replica)
	}
	b := appendU32(m.scratch[:0], uint32(start))
	b = appendBool(b, async)
	b = appendU32(b, uint32(len(micros)))
	for _, mb := range micros {
		b = appendU32(b, uint32(len(mb)))
		for _, i := range mb {
			b = appendU32(b, uint32(i))
		}
	}
	m.scratch = b
	resp, err := m.chunkRoundTrip(ctx, Msg{Type: MsgRunChunk, Replica: uint16(m.replica), Stage: -1, Data: b})
	if err != nil {
		if errors.Is(err, engine.ErrDiverged) || errors.Is(err, replica.ErrStraggler) {
			return nil, nil, err
		}
		m.err = fmt.Errorf("transport: replica %d: run chunk: %w", m.replica, err)
		return nil, nil, m.err
	}
	if resp.Type != MsgChunkDone {
		m.err = fmt.Errorf("transport: replica %d: reply type %d to run chunk", m.replica, resp.Type)
		return nil, nil, m.err
	}
	losses, grads, err := m.decodeChunkDone(resp.Data, len(micros))
	if err != nil {
		m.err = fmt.Errorf("transport: replica %d: %w", m.replica, err)
		return nil, nil, m.err
	}
	return losses, grads, nil
}

// chunkRoundTrip is roundTrip for the one long-running request. Without
// a straggler deadline it is roundTrip exactly. With one, the reply wait
// runs in a helper goroutine and the main flow watches deadline windows
// of sdl: each expired window counts one miss (cumulative across chunks;
// a reply inside its chunk's first window resets the count), and when
// the count reaches sk the member is handed back to the engine for
// demotion — the error wraps replica.ErrStraggler and does NOT poison
// the member, because the peer is alive and its late reply still
// arrives. The helper goroutine stays behind as the drainer: it consumes
// that late reply, discards it (the minibatch replays without this
// member), and marks the standby ready to rejoin.
//
// The deadline deliberately never cancels the underlying Recv: a
// cancelled read could lose an already-framed late reply, making both
// "late but correct" delivery and the drain impossible.
func (m *RemoteMember) chunkRoundTrip(ctx context.Context, req Msg) (Msg, error) {
	if m.sdl <= 0 || m.sk <= 0 {
		return m.roundTrip(ctx, req)
	}
	t0 := m.tk.Now()
	for attempt := 0; ; attempt++ {
		err := m.conn.Send(ctx, req)
		if err == nil {
			break
		}
		if IsTransient(err) && attempt < retryAttempts {
			m.tk.Instant(trace.NameRetry, int(req.Stage), -1, int64(len(req.Data)))
			if serr := m.backoff(ctx, attempt); serr != nil {
				return Msg{}, serr
			}
			continue
		}
		return Msg{}, err
	}
	ch := make(chan wireReply, 1)
	go func() {
		msg, err := m.recvReply(ctx)
		ch <- wireReply{msg, err}
	}()
	late := false
	for {
		t := time.NewTimer(m.sdl)
		select {
		case r := <-ch:
			t.Stop()
			if r.err != nil {
				return Msg{}, r.err
			}
			if !late {
				m.misses = 0
			}
			if r.msg.Type == MsgErr {
				return Msg{}, decodeWireErr(r.msg.Data)
			}
			m.tk.Span(wireName(req.Type), t0, int(req.Stage), -1, int64(len(req.Data)+len(r.msg.Data)))
			return r.msg, nil
		case <-t.C:
			late = true
			m.misses++
			if m.misses >= m.sk {
				m.ready = false
				m.draining = true
				go m.drain(ch)
				return Msg{}, fmt.Errorf("%w: replica %d missed %d consecutive %v deadlines", replica.ErrStraggler, m.replica, m.sk, m.sdl)
			}
		}
	}
}

type wireReply struct {
	msg Msg
	err error
}

// drain runs after a demotion: it waits out the straggler's in-flight
// reply (the recvReply goroutine chunkRoundTrip left behind), discards
// the payload — the interrupted minibatch replays over the survivors, so
// the late result must not be used — and marks the standby ready. A
// drain that ends in a transport error latches it instead, so the
// standby pool drops the member.
func (m *RemoteMember) drain(ch chan wireReply) {
	r := <-ch
	m.mu.Lock()
	m.draining = false
	if r.err != nil {
		if m.err == nil {
			m.err = fmt.Errorf("transport: replica %d: drain: %w", m.replica, r.err)
		}
	} else {
		m.ready = true
	}
	m.mu.Unlock()
}

func (m *RemoteMember) decodeChunkDone(data []byte, wantK int) ([]float64, [][][]*tensor.Tensor, error) {
	c := &cursor{b: data}
	nl := c.count(8)
	if cap(m.losses) < nl {
		m.losses = make([]float64, nl)
	}
	m.losses = m.losses[:nl]
	for i := range m.losses {
		m.losses[i] = c.f64()
	}
	k := c.count(1)
	p := c.count(1)
	if c.err == nil && (nl != wantK || k != wantK || p != m.stages) {
		return nil, nil, fmt.Errorf("chunk reply shape %d losses/%d micros/%d stages, want %d/%d/%d", nl, k, p, wantK, wantK, m.stages)
	}
	for len(m.grads) < k {
		m.grads = append(m.grads, make([][]*tensor.Tensor, m.stages))
	}
	for i := 0; i < k; i++ {
		for st := 0; st < p; st++ {
			m.grads[i][st] = c.tensorsInto(m.grads[i][st])
		}
	}
	if err := c.done(); err != nil {
		return nil, nil, err
	}
	return m.losses, m.grads[:k:k], nil
}

// --- collective surface (replica.Member beyond the Host slots) ---

func (m *RemoteMember) stageMsg(typ byte, stage int, data []byte) Msg {
	return Msg{Type: typ, Stage: int32(stage), Data: data}
}

// SetStageGrads scatters the leader's reduced gradients for one stage to
// this owner as a pure copy over the wire.
func (m *RemoteMember) SetStageGrads(stage int, bufs []*tensor.Tensor) {
	m.call(m.stageMsg(MsgSetGrads, stage, appendTensors(nil, bufs)), MsgAck)
}

// PrepareStage runs the stage's gradient averaging on the worker and
// returns its clip-norm partial (0 after a transport failure — the
// commit unwinds through Group's error check, not through the sum).
func (m *RemoteMember) PrepareStage(stage, nMicro int) float64 {
	resp, err := m.call(m.stageMsg(MsgPrepare, stage, appendU32(nil, uint32(nMicro))), MsgPrepared)
	if err != nil {
		return 0
	}
	c := &cursor{b: resp.Data}
	v := c.f64()
	if err := c.done(); err != nil {
		m.fail(err)
		return 0
	}
	return v
}

// BeginStep advances the worker replica's step clocks.
func (m *RemoteMember) BeginStep() {
	m.call(Msg{Type: MsgBeginStep, Stage: -1}, MsgAck)
}

// ScaleStage applies the clip factor to the stage's gradients remotely.
func (m *RemoteMember) ScaleStage(stage int, scale float64) {
	m.call(m.stageMsg(MsgScale, stage, appendF64(nil, scale)), MsgAck)
}

// StepStage applies the optimizer update for the stage remotely.
func (m *RemoteMember) StepStage(stage int) {
	m.call(m.stageMsg(MsgStep, stage, nil), MsgAck)
}

// FinishStage finalizes the stage's step remotely.
func (m *RemoteMember) FinishStage(stage int) {
	m.call(m.stageMsg(MsgFinish, stage, nil), MsgAck)
}

// StageState fetches the stage's post-step state from the worker into a
// per-stage reuse buffer. replica.Group reads each owner's state from a
// single goroutine before fanning it out, so the buffer is never written
// while an importer reads it. Returns nil after a transport failure.
func (m *RemoteMember) StageState(stage int) []*tensor.Tensor {
	resp, err := m.call(m.stageMsg(MsgGetState, stage, nil), MsgState)
	if err != nil {
		return nil
	}
	c := &cursor{b: resp.Data}
	m.states[stage] = c.tensorsInto(m.states[stage])
	if err := c.done(); err != nil {
		m.fail(err)
		return nil
	}
	return m.states[stage]
}

// ImportStageState ships an owner's post-step stage state to the worker,
// which imports it and pushes its version queue.
func (m *RemoteMember) ImportStageState(stage int, src []*tensor.Tensor) {
	m.call(m.stageMsg(MsgSetState, stage, appendTensors(nil, src)), MsgAck)
}

// RestoreVersions ships a stage's weight-version ring to the worker
// (checkpoint restore): the ring's base version number and its
// snapshots, oldest to newest. The worker replaces its ring wholesale,
// so historical-version installs after a restore are bit-identical to
// the checkpointed run's (replica.VersionRestorer).
func (m *RemoteMember) RestoreVersions(stage, base int, snaps [][]*tensor.Tensor) {
	b := appendU32(nil, uint32(base))
	b = appendU32(b, uint32(len(snaps)))
	for _, snap := range snaps {
		b = appendTensors(b, snap)
	}
	m.call(m.stageMsg(MsgSetRing, stage, b), MsgAck)
}

// SyncEpoch pushes the leader's epoch clock to the worker.
func (m *RemoteMember) SyncEpoch() {
	m.call(Msg{Type: MsgSyncEpoch, Stage: -1, Data: appendU32(nil, uint32(m.lead.Epoch()))}, MsgAck)
}

// SyncFromLeader is the full-state broadcast of the leader-serial
// commit: every stage's leader state ships to the worker (chunked for
// large tensors), then the step clock aligns.
func (m *RemoteMember) SyncFromLeader() {
	for st := 0; st < m.stages; st++ {
		if _, err := m.call(m.stageMsg(MsgSetState, st, appendTensors(nil, m.lead.StageState(st))), MsgAck); err != nil {
			return
		}
	}
	m.call(Msg{Type: MsgSync, Stage: -1, Data: appendU32(nil, uint32(m.lead.Step()))}, MsgAck)
}

func (m *RemoteMember) fail(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = fmt.Errorf("transport: replica %d: %w", m.replica, err)
	}
	m.mu.Unlock()
}

// --- engine.Host surface ---
//
// The pipeline slots of a remote member run in the worker process,
// driven by its own inner engine via MsgRunChunk; the replicated engine
// never drives them through this proxy. Stages is real (replica.Compute
// reads it at wrap time); the slot methods refuse loudly.

// Stages returns P.
func (m *RemoteMember) Stages() int { return m.stages }

// TakeStageGrads is leader-local in every collective; a remote call is a
// protocol bug.
func (m *RemoteMember) TakeStageGrads(stage int, bufs []*tensor.Tensor) []*tensor.Tensor {
	panic("transport: TakeStageGrads on a remote member")
}

// FoldStageGrads is leader-local in every collective; a remote call is a
// protocol bug.
func (m *RemoteMember) FoldStageGrads(stage int, bufs []*tensor.Tensor) {
	panic("transport: FoldStageGrads on a remote member")
}

func (m *RemoteMember) remoteSlot(name string) string {
	return "transport: " + name + " on a remote member (its pipeline runs in the worker process)"
}

// Async panics: the worker's pipeline is driven remotely.
func (m *RemoteMember) Async() bool { panic(m.remoteSlot("Async")) }

// Recompute panics: the worker's pipeline is driven remotely.
func (m *RemoteMember) Recompute() bool { panic(m.remoteSlot("Recompute")) }

// MicroBase panics: the worker's pipeline is driven remotely.
func (m *RemoteMember) MicroBase() int { panic(m.remoteSlot("MicroBase")) }

// Splittable panics: the worker's pipeline is driven remotely.
func (m *RemoteMember) Splittable() bool { panic(m.remoteSlot("Splittable")) }

// InstallForward panics: the worker's pipeline is driven remotely.
func (m *RemoteMember) InstallForward(s, stage int) { panic(m.remoteSlot("InstallForward")) }

// InstallBackward panics: the worker's pipeline is driven remotely.
func (m *RemoteMember) InstallBackward(s, stage int) { panic(m.remoteSlot("InstallBackward")) }

// InstallRecompute panics: the worker's pipeline is driven remotely.
func (m *RemoteMember) InstallRecompute(s, stage int) { panic(m.remoteSlot("InstallRecompute")) }

// Restore panics: the worker's pipeline is driven remotely.
func (m *RemoteMember) Restore(stage int) { panic(m.remoteSlot("Restore")) }

// BeginMicro panics: the worker's pipeline is driven remotely.
func (m *RemoteMember) BeginMicro(s int, mb []int) { panic(m.remoteSlot("BeginMicro")) }

// StageForward panics: the worker's pipeline is driven remotely.
func (m *RemoteMember) StageForward(s, stage int) float64 { panic(m.remoteSlot("StageForward")) }

// StageBackward panics: the worker's pipeline is driven remotely.
func (m *RemoteMember) StageBackward(s, stage int) { panic(m.remoteSlot("StageBackward")) }

// EndMicro panics: the worker's pipeline is driven remotely.
func (m *RemoteMember) EndMicro(s int) { panic(m.remoteSlot("EndMicro")) }

// BadLoss panics: the worker's pipeline is driven remotely.
func (m *RemoteMember) BadLoss(loss float64) bool { panic(m.remoteSlot("BadLoss")) }

// ClipScale is leader-local in every collective; a remote call is a
// protocol bug.
func (m *RemoteMember) ClipScale(sumSq float64) float64 { panic(m.remoteSlot("ClipScale")) }

var (
	_ replica.Member          = (*RemoteMember)(nil)
	_ replica.Runner          = (*RemoteMember)(nil)
	_ replica.Erring          = (*RemoteMember)(nil)
	_ replica.VersionRestorer = (*RemoteMember)(nil)
	_ replica.Standby         = (*RemoteMember)(nil)
)
