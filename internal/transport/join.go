package transport

import (
	"context"
	"fmt"

	"pipemare/internal/engine"
)

// Mid-run join protocol. A fresh worker dials a *running* leader and
// announces its capabilities (MsgJoin); the leader parks the connection
// until the next minibatch boundary — the only point with no optimizer
// state in flight — then either rejects (MsgErr) or admits: it sends the
// full Spec (MsgWelcome), the worker builds its follower and confirms
// (MsgJoinOK), and the leader performs the live state handoff over the
// ordinary collective surface (SyncEpoch, SyncFromLeader, MsgSetRing)
// before growing the reduce tree. Unlike the MsgHello handshake, the
// Welcome spec carries no state checksum: the joiner's initial state is
// irrelevant because every tensor it will train from arrives in the
// handoff.

// JoinSpec is what a joiner announces in MsgJoin: the task shape it was
// built for. The leader rejects a mismatch (wrong stage count, method or
// technique flags) instead of letting the curves diverge, and parks the
// joiner until its requested join step, if any.
type JoinSpec struct {
	Stages int  // pipeline stage count the joiner resolved
	Method int  // core.Method the joiner trains with
	T2     bool // whether Technique 2 state is part of its stage state
	JoinAt int  // earliest leader step to admit at (0 = next boundary)
}

func (s JoinSpec) encode() []byte {
	b := appendU32(nil, uint32(s.Stages))
	b = appendU32(b, uint32(s.Method))
	b = appendBool(b, s.T2)
	b = appendU32(b, uint32(s.JoinAt))
	return b
}

func decodeJoinSpec(data []byte) (JoinSpec, error) {
	c := &cursor{b: data}
	s := JoinSpec{
		Stages: c.i32(),
		Method: c.i32(),
		T2:     c.boolean(),
		JoinAt: c.i32(),
	}
	if err := c.done(); err != nil {
		return JoinSpec{}, fmt.Errorf("bad join request: %w", err)
	}
	return s, nil
}

// AcceptJoin reads a parked connection's join request — the leader's
// accept loop calls it once per joiner, before parking the connection
// until the next minibatch boundary.
func AcceptJoin(ctx context.Context, conn MsgConn) (JoinSpec, error) {
	req, err := conn.Recv(ctx)
	if err != nil {
		return JoinSpec{}, fmt.Errorf("transport: join: %w", err)
	}
	if req.Type != MsgJoin {
		return JoinSpec{}, fmt.Errorf("transport: join: first message type %d, want join", req.Type)
	}
	return decodeJoinSpec(req.Data)
}

// RejectJoin tells a parked joiner it cannot be admitted (capability
// mismatch, replica cap reached) and why. Best effort; the caller closes
// the connection either way.
func RejectJoin(ctx context.Context, conn MsgConn, reason string) {
	data := appendU32(nil, errGeneric)
	data = append(data, reason...)
	conn.Send(ctx, Msg{Type: MsgErr, Stage: -1, Data: data})
}

// Welcome admits a parked joiner at a minibatch boundary: it sends the
// full Spec (the joiner's new replica identity, topology, clocks,
// commit mode) and waits for MsgJoinOK, returning the member proxy ready
// for the state handoff. The caller rebuilds the group over R+1 members
// only after the handoff succeeds.
func Welcome(ctx context.Context, conn MsgConn, spec Spec, lead LeaderState) (*RemoteMember, error) {
	m := newMember(conn, spec, lead)
	resp, err := m.roundTrip(ctx, Msg{Type: MsgWelcome, Replica: uint16(spec.Replica), Stage: -1, Data: spec.encode()})
	if err != nil {
		return nil, fmt.Errorf("transport: welcoming replica %d: %w", spec.Replica, err)
	}
	if resp.Type != MsgJoinOK {
		return nil, fmt.Errorf("transport: welcoming replica %d: unexpected reply type %d", spec.Replica, resp.Type)
	}
	return m, nil
}

// ServeJoin is the worker side of a mid-run join: it announces cap over
// an established connection to a running leader, waits — arbitrarily
// long; admission happens at a minibatch boundary of the leader's
// choosing — for the Welcome spec, builds the local follower from it,
// confirms, and enters the ordinary serve loop. The first requests the
// loop sees are the leader's state handoff.
func ServeJoin(ctx context.Context, conn MsgConn, cap JoinSpec, build Builder, inner engine.Engine) error {
	if err := conn.Send(ctx, Msg{Type: MsgJoin, Stage: -1, Data: cap.encode()}); err != nil {
		return fmt.Errorf("transport: join: %w", err)
	}
	resp, err := conn.Recv(ctx)
	if err != nil {
		return fmt.Errorf("transport: join: %w", err)
	}
	if resp.Type == MsgErr {
		return fmt.Errorf("transport: join rejected: %w", decodeWireErr(resp.Data))
	}
	if resp.Type != MsgWelcome {
		return fmt.Errorf("transport: join: reply type %d, want welcome", resp.Type)
	}
	spec, err := decodeSpec(resp.Data)
	if err != nil {
		return fmt.Errorf("transport: join: %w", err)
	}
	if inner == nil {
		inner = engine.NewReference()
	}
	s := &server{conn: conn, inner: inner, replica: uint16(spec.Replica), hb: spec.Heartbeat}
	reject := func(format string, args ...any) error {
		err := fmt.Errorf(format, args...)
		s.replyErr(ctx, errGeneric, err.Error())
		return fmt.Errorf("transport: join: %w", err)
	}
	member, err := build(spec)
	if err != nil {
		return reject("building follower: %w", err)
	}
	if got := member.Stages(); got != spec.Stages {
		return reject("follower has %d stages, leader has %d", got, spec.Stages)
	}
	// No checksum: the joiner's state is fully replaced by the handoff.
	// The clocks still align here so the follower is consistent the
	// moment the serve loop starts.
	if cs, ok := member.(ClockSetter); ok {
		cs.SetStep(spec.Step)
		cs.SetEpoch(spec.Epoch)
	} else if spec.Step != 0 || spec.Epoch != 0 {
		return reject("leader clocks (step %d, epoch %d) cannot be applied: member has no clock setters", spec.Step, spec.Epoch)
	}
	if err := s.reply(ctx, Msg{Type: MsgJoinOK, Stage: -1}); err != nil {
		return fmt.Errorf("transport: join: %w", err)
	}
	return s.serve(ctx, member)
}
