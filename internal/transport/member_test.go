package transport

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"pipemare/internal/engine"
	"pipemare/internal/replica"
	"pipemare/internal/tensor"
)

// wireMember is a full fake replica.Member (plus ClockSetter) with one
// scalar parameter per stage, for exercising the member/server protocol
// without a trainer: forward returns a distinct loss per microbatch,
// backward accumulates s+1, state is a per-stage scalar.
type wireMember struct {
	p  int
	mu sync.Mutex

	acc    []float64
	state  []*tensor.Tensor
	step   int
	epoch  int
	synced int

	prepared []int
	stepped  []int
	imported []int
}

func newWireMember(p int) *wireMember {
	m := &wireMember{p: p, acc: make([]float64, p), state: make([]*tensor.Tensor, p),
		prepared: make([]int, p), stepped: make([]int, p), imported: make([]int, p)}
	for st := range m.state {
		m.state[st] = tensor.New(1)
		m.state[st].Data[0] = float64(100 * st)
	}
	return m
}

func (m *wireMember) Stages() int                  { return m.p }
func (m *wireMember) Async() bool                  { return true }
func (m *wireMember) Recompute() bool              { return false }
func (m *wireMember) MicroBase() int               { return 0 }
func (m *wireMember) Splittable() bool             { return true }
func (m *wireMember) InstallForward(s, stage int)  {}
func (m *wireMember) InstallBackward(s, stage int) {}
func (m *wireMember) InstallRecompute(s, st int)   {}
func (m *wireMember) Restore(stage int)            {}
func (m *wireMember) BeginMicro(s int, mb []int)   {}
func (m *wireMember) StageForward(s, stage int) float64 {
	if stage == m.p-1 {
		return float64(100 + s)
	}
	return 0
}

func (m *wireMember) StageBackward(s, stage int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.acc[stage] += float64(s + 1)
}

func (m *wireMember) EndMicro(s int)            {}
func (m *wireMember) BadLoss(loss float64) bool { return false }

func (m *wireMember) TakeStageGrads(stage int, bufs []*tensor.Tensor) []*tensor.Tensor {
	m.mu.Lock()
	defer m.mu.Unlock()
	if bufs == nil {
		bufs = []*tensor.Tensor{tensor.New(1)}
	}
	bufs[0].Data[0] = m.acc[stage]
	m.acc[stage] = 0
	return bufs
}

func (m *wireMember) FoldStageGrads(stage int, bufs []*tensor.Tensor) {}

func (m *wireMember) SetStageGrads(stage int, bufs []*tensor.Tensor) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.acc[stage] = bufs[0].Data[0]
}

func (m *wireMember) PrepareStage(stage, nMicro int) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.prepared[stage]++
	return float64(stage+1) * float64(nMicro)
}

func (m *wireMember) ClipScale(sumSq float64) float64     { return 1 }
func (m *wireMember) ScaleStage(stage int, scale float64) {}
func (m *wireMember) BeginStep()                          {}

func (m *wireMember) StepStage(stage int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stepped[stage]++
	m.state[stage].Data[0] = 1000 + m.acc[stage]
}

func (m *wireMember) FinishStage(stage int) {}

func (m *wireMember) StageState(stage int) []*tensor.Tensor {
	m.mu.Lock()
	defer m.mu.Unlock()
	return []*tensor.Tensor{m.state[stage].Clone()}
}

func (m *wireMember) ImportStageState(stage int, src []*tensor.Tensor) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.imported[stage]++
	m.state[stage].CopyFrom(src[0])
}

func (m *wireMember) SyncEpoch() {}

func (m *wireMember) SyncFromLeader() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.synced++
}

func (m *wireMember) SetStep(step int)   { m.mu.Lock(); m.step = step; m.mu.Unlock() }
func (m *wireMember) SetEpoch(epoch int) { m.mu.Lock(); m.epoch = epoch; m.mu.Unlock() }

var (
	_ replica.Member = (*wireMember)(nil)
	_ ClockSetter    = (*wireMember)(nil)
)

// leadState is the leader-side state the remote proxy reads for syncs.
type leadState struct {
	*wireMember
}

func (l leadState) Step() int  { return 7 }
func (l leadState) Epoch() int { return 3 }

// startPair serves a wireMember over loopback and returns the connected
// leader-side proxy plus the worker's member for inspection.
func startPair(t *testing.T, p int) (*RemoteMember, *wireMember, *wireMember, func()) {
	t.Helper()
	lis, dial := Loopback()
	worker := newWireMember(p)
	leader := newWireMember(p)
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() {
		serveDone <- Serve(ctx, lis, func(spec Spec) (replica.Member, error) { return worker, nil }, nil)
	}()
	conn, err := dial.Dial(ctx)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Replica: 1, Replicas: 2, Stages: p, Step: 7, Epoch: 3,
		Checksum: StateChecksum(leadState{leader}, p)}
	m, err := NewRemoteMember(ctx, conn, spec, leadState{leader})
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}
	stop := func() {
		m.Close()
		if err := <-serveDone; err != nil {
			t.Errorf("serve: %v", err)
		}
		cancel()
		lis.Close()
	}
	return m, worker, leader, stop
}

// TestRemoteMemberProtocol drives every collective of the member surface
// over the loopback wire and checks it lands on the worker's member with
// the same arguments and results as a direct call.
func TestRemoteMemberProtocol(t *testing.T) {
	const p = 3
	m, worker, _, stop := startPair(t, p)
	defer stop()

	// Handshake applied the leader's clocks.
	worker.mu.Lock()
	if worker.step != 7 || worker.epoch != 3 {
		t.Fatalf("worker clocks %d/%d after handshake, want 7/3", worker.step, worker.epoch)
	}
	worker.mu.Unlock()

	// RunChunk: the worker drives the chunk through its Reference engine
	// and returns per-microbatch losses and per-(micro, stage) gradients.
	losses, grads, err := m.RunChunk(context.Background(), 4, true, [][]int{{0}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(losses) != 2 || losses[0] != 104 || losses[1] != 105 {
		t.Fatalf("losses %v, want [104 105]", losses)
	}
	for k := 0; k < 2; k++ {
		for st := 0; st < p; st++ {
			if got := grads[k][st][0].Data[0]; got != float64(4+k+1) {
				t.Fatalf("grads[%d][%d] = %g, want %g", k, st, got, float64(4+k+1))
			}
		}
	}

	// Scatter → prepare → step → gather, as the sharded commit would.
	g := tensor.New(1)
	g.Data[0] = 42
	m.SetStageGrads(1, []*tensor.Tensor{g})
	if got := m.PrepareStage(1, 8); got != 2*8 {
		t.Fatalf("PrepareStage partial %g, want 16", got)
	}
	m.BeginStep()
	m.ScaleStage(1, 0.5)
	m.StepStage(1)
	m.FinishStage(1)
	st := m.StageState(1)
	if len(st) != 1 || st[0].Data[0] != 1000+42 {
		t.Fatalf("StageState %v, want [1042]", st)
	}
	src := tensor.New(1)
	src.Data[0] = -5
	m.ImportStageState(2, []*tensor.Tensor{src})
	worker.mu.Lock()
	if worker.state[2].Data[0] != -5 || worker.imported[2] != 1 {
		t.Fatalf("import did not land: state %g, imports %d", worker.state[2].Data[0], worker.imported[2])
	}
	worker.mu.Unlock()

	// Epoch sync and the full leader-state broadcast.
	m.SyncEpoch()
	m.SyncFromLeader()
	worker.mu.Lock()
	if worker.epoch != 3 {
		t.Fatalf("worker epoch %d after SyncEpoch, want 3", worker.epoch)
	}
	if worker.step != 7 {
		t.Fatalf("worker step %d after broadcast, want the leader's 7", worker.step)
	}
	for s := 0; s < p; s++ {
		if worker.state[s].Data[0] != float64(100*s) {
			t.Fatalf("broadcast stage %d state %g, want the leader's %d", s, worker.state[s].Data[0], 100*s)
		}
	}
	worker.mu.Unlock()
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestHandshakeRejectsMismatchedState pins the integrity check: a worker
// whose rebuilt follower hashes differently (wrong seed, task or
// partition) fails the handshake with a descriptive error instead of
// silently diverging the curves.
func TestHandshakeRejectsMismatchedState(t *testing.T) {
	const p = 2
	lis, dial := Loopback()
	defer lis.Close()
	worker := newWireMember(p)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	go Serve(ctx, lis, func(spec Spec) (replica.Member, error) { return worker, nil }, nil)
	conn, err := dial.Dial(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	leader := newWireMember(p)
	spec := Spec{Replica: 1, Replicas: 2, Stages: p,
		Checksum: StateChecksum(leadState{leader}, p) + 1} // poisoned
	if _, err := NewRemoteMember(ctx, conn, spec, leadState{leader}); err == nil ||
		!strings.Contains(err.Error(), "checksum") {
		t.Fatalf("handshake err = %v, want a checksum mismatch", err)
	}
}

// TestHandshakeRejectsStageMismatch: a worker that resolves a different
// stage count must be refused.
func TestHandshakeRejectsStageMismatch(t *testing.T) {
	lis, dial := Loopback()
	defer lis.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	go Serve(ctx, lis, func(spec Spec) (replica.Member, error) { return newWireMember(3), nil }, nil)
	conn, err := dial.Dial(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	leader := newWireMember(2)
	spec := Spec{Replica: 1, Replicas: 2, Stages: 2,
		Checksum: StateChecksum(leadState{leader}, 2)}
	if _, err := NewRemoteMember(ctx, conn, spec, leadState{leader}); err == nil ||
		!strings.Contains(err.Error(), "stages") {
		t.Fatalf("handshake err = %v, want a stage mismatch", err)
	}
}

// TestCancelMidCollectiveUnwinds pins satellite liveness over real TCP:
// a collective blocked on a worker that never replies unwinds when the
// bound context cancels — no deadlock — and the member latches the error
// for replica.Group to surface.
func TestCancelMidCollectiveUnwinds(t *testing.T) {
	lis, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	ctx := context.Background()
	go func() {
		// A worker that completes the handshake, then goes silent.
		conn, err := lis.Accept(ctx)
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := conn.Recv(ctx); err != nil {
			return
		}
		conn.Send(ctx, Msg{Type: MsgHelloOK, Stage: -1})
		select {} // never reply again (goroutine dies with the process)
	}()
	conn, err := NewTCPDialer(lis.Addr()).Dial(ctx)
	if err != nil {
		t.Fatal(err)
	}
	leader := newWireMember(2)
	spec := Spec{Replica: 1, Replicas: 2, Stages: 2,
		Checksum: StateChecksum(leadState{leader}, 2)}
	m, err := NewRemoteMember(ctx, conn, spec, leadState{leader})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	mctx, cancel := context.WithCancel(context.Background())
	m.BindContext(mctx)
	done := make(chan float64, 1)
	go func() { done <- m.PrepareStage(0, 4) }()
	time.Sleep(30 * time.Millisecond)
	cancel()
	select {
	case v := <-done:
		if v != 0 {
			t.Fatalf("canceled PrepareStage returned %g, want 0", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("PrepareStage deadlocked after cancel")
	}
	if err := m.Err(); err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("member error %v, want a latched context.Canceled", err)
	}
	// Poisoned member fails fast instead of touching the dead wire.
	if v := m.PrepareStage(1, 4); v != 0 {
		t.Fatalf("poisoned PrepareStage returned %g, want 0", v)
	}
}

// TestWorkerDeathMidChunkIsAnError pins satellite error surfacing: a
// worker whose connection drops mid-minibatch produces a transport error
// from RunChunk (not a hang, not a panic), and the member stays poisoned.
func TestWorkerDeathMidChunkIsAnError(t *testing.T) {
	lis, dial := Loopback()
	defer lis.Close()
	ctx := context.Background()
	go func() {
		conn, err := lis.Accept(ctx)
		if err != nil {
			return
		}
		if _, err := conn.Recv(ctx); err != nil {
			return
		}
		conn.Send(ctx, Msg{Type: MsgHelloOK, Stage: -1})
		conn.Recv(ctx) // the chunk request...
		conn.Close()   // ...and the worker dies
	}()
	conn, err := dial.Dial(ctx)
	if err != nil {
		t.Fatal(err)
	}
	leader := newWireMember(2)
	spec := Spec{Replica: 1, Replicas: 2, Stages: 2,
		Checksum: StateChecksum(leadState{leader}, 2)}
	m, err := NewRemoteMember(ctx, conn, spec, leadState{leader})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, _, err := m.RunChunk(cctx, 0, true, [][]int{{0}}); err == nil {
		t.Fatal("RunChunk succeeded against a dead worker")
	} else if errors.Is(err, engine.ErrDiverged) {
		t.Fatal("a dead worker must not read as divergence")
	}
	if m.Err() == nil {
		t.Fatal("member did not latch the transport error")
	}
}

// TestServerSurvivesMalformedRequests pins the worker-side panic guard: a
// garbage payload becomes an error reply, not a worker crash, and the
// serve loop exits cleanly rather than processing further requests.
func TestServerSurvivesMalformedRequests(t *testing.T) {
	lis, dial := Loopback()
	defer lis.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	serveDone := make(chan error, 1)
	go func() {
		serveDone <- Serve(ctx, lis, func(spec Spec) (replica.Member, error) { return newWireMember(2), nil }, nil)
	}()
	conn, err := dial.Dial(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	leader := newWireMember(2)
	spec := Spec{Replica: 1, Replicas: 2, Stages: 2,
		Checksum: StateChecksum(leadState{leader}, 2)}
	if err := conn.Send(ctx, Msg{Type: MsgHello, Replica: 1, Stage: -1, Data: spec.encode()}); err != nil {
		t.Fatal(err)
	}
	if resp, err := conn.Recv(ctx); err != nil || resp.Type != MsgHelloOK {
		t.Fatalf("handshake: %v / type %d", err, resp.Type)
	}
	// A stage index far out of range panics the member; the guard must
	// turn it into MsgErr.
	if err := conn.Send(ctx, Msg{Type: MsgStep, Replica: 1, Stage: 99}); err != nil {
		t.Fatal(err)
	}
	resp, err := conn.Recv(ctx)
	if err != nil || resp.Type != MsgErr {
		t.Fatalf("reply to malformed request: %v / type %d, want MsgErr", err, resp.Type)
	}
	if err := <-serveDone; err == nil {
		t.Fatal("serve loop ignored a fatal request error")
	}
}
