package transport

import (
	"strings"
	"testing"
)

// TestFrameRoundTrip pins the frame codec: header fields and payload
// bytes survive encode/decode exactly, and consecutive frames in one
// buffer decode in sequence via the returned remainder.
func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		{0xde, 0xad, 0xbe, 0xef},
		make([]byte, maxChunk), // the largest legal single-frame payload
	}
	for i := range payloads[3] {
		payloads[3][i] = byte(i * 31)
	}
	headers := []Header{
		{Type: MsgHello, Replica: 0, Stage: -1},
		{Type: MsgSetGrads, Flags: flagMore, Replica: 3, Stage: 7},
		{Type: MsgChunkDone, Replica: 65535, Stage: 1<<31 - 1},
	}
	var buf []byte
	var want []struct {
		h Header
		p []byte
	}
	for i, h := range headers {
		p := payloads[i%len(payloads)]
		buf = AppendFrame(buf, h, p)
		want = append(want, struct {
			h Header
			p []byte
		}{h, p})
	}
	rest := buf
	for i, w := range want {
		h, payload, r, err := DecodeFrame(rest)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if h != w.h {
			t.Fatalf("frame %d: header %+v, want %+v", i, h, w.h)
		}
		if string(payload) != string(w.p) {
			t.Fatalf("frame %d: payload differs (%d bytes, want %d)", i, len(payload), len(w.p))
		}
		if h.More() != (w.h.Flags&flagMore != 0) {
			t.Fatalf("frame %d: More() = %t", i, h.More())
		}
		rest = r
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after the last frame", len(rest))
	}
}

// TestDecodeFrameErrors pins the malformed-input paths: truncation at
// every boundary, bad magic, unknown version, oversized length prefixes
// and CRC mismatches all error — never panic, never return garbage.
func TestDecodeFrameErrors(t *testing.T) {
	good := AppendFrame(nil, Header{Type: MsgAck, Replica: 1, Stage: 2}, []byte{1, 2, 3})
	cases := []struct {
		name string
		b    []byte
		want string
	}{
		{"empty", nil, "truncated frame header"},
		{"short header", good[:headerLen-1], "truncated frame header"},
		{"bad magic", append([]byte{0x00}, good[1:]...), "bad frame magic"},
		{"bad version", func() []byte {
			b := append([]byte(nil), good...)
			b[2] = 99
			return b
		}(), "protocol version"},
		{"oversized length", func() []byte {
			b := append([]byte(nil), good...)
			b[12], b[13], b[14], b[15] = 0xff, 0xff, 0xff, 0xff
			return b
		}(), "exceeds limit"},
		{"truncated payload", good[:len(good)-1], "truncated frame"},
		{"flipped payload bit", func() []byte {
			b := append([]byte(nil), good...)
			b[headerLen] ^= 0x01
			return b
		}(), "CRC mismatch"},
		{"flipped header bit", func() []byte {
			b := append([]byte(nil), good...)
			b[6] ^= 0x80 // replica id is CRC-covered too
			return b
		}(), "CRC mismatch"},
		{"length prefix lies", func() []byte {
			// A length prefix larger than the actual payload must read as
			// truncation, not index past the buffer.
			b := append([]byte(nil), good...)
			b[15] = 200
			return b
		}(), "truncated frame"},
	}
	for _, tc := range cases {
		_, _, _, err := DecodeFrame(tc.b)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// FuzzDecodeFrame throws arbitrary bytes at the frame decoder: it must
// never panic, and whenever it succeeds the reported payload must lie
// within bounds and re-encode to a decodable frame.
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(AppendFrame(nil, Header{Type: MsgHello, Stage: -1}, nil))
	f.Add(AppendFrame(nil, Header{Type: MsgSetGrads, Flags: flagMore, Replica: 9, Stage: 4}, []byte("tensor bits")))
	trunc := AppendFrame(nil, Header{Type: MsgAck}, []byte{1, 2, 3})
	f.Add(trunc[:len(trunc)-2])
	corrupt := AppendFrame(nil, Header{Type: MsgErr}, []byte{9})
	corrupt[len(corrupt)-1] ^= 0xff
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, b []byte) {
		h, payload, rest, err := DecodeFrame(b)
		if err != nil {
			return
		}
		if len(payload) > maxFramePayload {
			t.Fatalf("accepted payload of %d bytes", len(payload))
		}
		if len(payload)+len(rest) > len(b) {
			t.Fatal("payload+rest exceed the input")
		}
		re := AppendFrame(nil, h, payload)
		h2, p2, _, err := DecodeFrame(re)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		if h2 != h || string(p2) != string(payload) {
			t.Fatal("re-encoded frame decodes differently")
		}
	})
}
