// Package transport implements the wire layer that turns the in-process
// replica collectives (package replica) into distributed ones: a
// length-prefixed, CRC-checked binary frame protocol with chunked
// streaming for large tensors, two interchangeable byte transports —
// loopback (in-process pipes, zero network) and TCP (real sockets with
// dial retry/backoff and context-aware reads and writes) — and, on top,
// RemoteMember and Serve, which adapt the wire to the replica.Member
// surface so replica.Group's tree all-reduce, sharded commit and
// broadcast run unchanged whether a follower lives in the same process
// or behind a socket.
//
// # Wire format
//
// Every message travels as one or more frames:
//
//	offset  size  field
//	0       2     magic "PM" (0x50 0x4D)
//	2       1     protocol version (2)
//	3       1     message type
//	4       1     flags (bit 0: more chunks of this message follow)
//	5       1     reserved (0)
//	6       2     replica id (big-endian uint16)
//	8       4     stage / shard id (big-endian int32; -1 = none)
//	12      4     payload length (big-endian uint32, ≤ maxFramePayload)
//	16      n     payload
//	16+n    4     CRC-32 (IEEE) over header+payload
//
// Tensor payloads larger than maxChunk split into consecutive frames
// with the more-flag set on all but the last; the receiver reassembles
// them into one message. Malformed input — bad magic, unknown version,
// oversized length prefixes, truncated payloads, CRC mismatches — is
// reported as an error, never a panic (FuzzDecodeFrame pins this).
//
// # Determinism across serialization
//
// Payload floats are raw IEEE-754 bit patterns at the tensor's dtype
// width (math.Float64bits or Float32bits, selected by a per-tensor dtype
// tag), so a tensor round-trips bit-exactly: no formatting, no rounding,
// no widening. Every
// collective that moves floats — gradient export, scatter, state gather,
// broadcast — is therefore the same pure copy it is in process, and the
// replica layer's determinism argument (all arithmetic at the tree root,
// in global microbatch order) survives the wire unchanged.
package transport

import (
	"fmt"
	"hash/crc32"
)

const (
	// frameMagic starts every frame: "PM".
	frameMagic0 = 0x50
	frameMagic1 = 0x4D
	// Version is the protocol version this package speaks. Version 2
	// added a dtype tag byte to every tensor payload (float32 support);
	// version-1 peers are rejected rather than mis-decoded.
	Version = 2

	headerLen  = 16
	trailerLen = 4 // CRC-32

	// flagMore marks a frame whose message continues in the next frame.
	flagMore = 0x01

	// maxChunk is the largest payload a sender puts in one frame: larger
	// messages stream as chunks so a multi-megabyte tensor never needs a
	// contiguous wire buffer at once.
	maxChunk = 1 << 18
	// maxFramePayload is the largest payload length a receiver accepts in
	// a single frame (a small safety factor over maxChunk).
	maxFramePayload = 1 << 20
	// maxMsg caps a reassembled message, bounding memory against a
	// corrupt or hostile peer.
	maxMsg = 1 << 30
)

// Message types. Requests flow leader→worker; every request has exactly
// one reply (MsgAck, a typed reply, or MsgErr). MsgPing is the one
// exception: the worker interleaves it with a pending MsgChunkDone as a
// liveness signal, and the leader consumes it without replying.
const (
	MsgHello     = 1  // leader→worker: Spec handshake
	MsgHelloOK   = 2  // worker→leader: handshake accepted
	MsgRunChunk  = 3  // leader→worker: run a chunk of microbatches
	MsgChunkDone = 4  // worker→leader: chunk losses + exported gradients
	MsgSetGrads  = 5  // leader→worker: overwrite a stage's gradient accumulators
	MsgPrepare   = 6  // leader→worker: PrepareStage(stage, nMicro)
	MsgPrepared  = 7  // worker→leader: the stage's clip-norm partial
	MsgBeginStep = 8  // leader→worker: advance the step clocks
	MsgScale     = 9  // leader→worker: ScaleStage(stage, scale)
	MsgStep      = 10 // leader→worker: StepStage(stage)
	MsgFinish    = 11 // leader→worker: FinishStage(stage)
	MsgGetState  = 12 // leader→worker: read a stage's post-step state
	MsgState     = 13 // worker→leader: the stage's state tensors
	MsgSetState  = 14 // leader→worker: import a stage's state (gather/broadcast)
	MsgSyncEpoch = 15 // leader→worker: align the follower's epoch clock
	MsgSync      = 16 // leader→worker: align the follower's step clock (broadcast tail)
	MsgAck       = 17 // worker→leader: generic success reply
	MsgErr       = 18 // worker→leader: failure reply (code + text)
	MsgBye       = 19 // leader→worker: clean shutdown
	MsgPing      = 20 // worker→leader: heartbeat while a chunk computes (no reply)
	MsgSetRing   = 21 // leader→worker: restore a stage's weight-version ring
	MsgJoin      = 22 // joiner→leader: mid-run join request (capability spec)
	MsgWelcome   = 23 // leader→joiner: admission Spec, sent at a minibatch boundary
	MsgJoinOK    = 24 // joiner→leader: admission spec accepted, entering the serve loop
)

// Error codes carried by MsgErr.
const (
	errGeneric  = 1 // the worker failed; the connection is unusable
	errDiverged = 2 // the chunk diverged (a normal training outcome, not a transport fault)
)

// Header is the fixed per-frame metadata.
type Header struct {
	Type    byte
	Flags   byte
	Replica uint16
	Stage   int32 // -1 when the message is not stage-scoped
}

// More reports whether the message continues in the next frame.
func (h Header) More() bool { return h.Flags&flagMore != 0 }

var crcTable = crc32.IEEETable

// AppendFrame appends one encoded frame (header, payload, CRC trailer)
// to dst and returns the extended slice. The payload must not exceed
// maxChunk; message chunking is the caller's job (Conn.Send).
func AppendFrame(dst []byte, h Header, payload []byte) []byte {
	if len(payload) > maxChunk {
		panic(fmt.Sprintf("transport: frame payload %d exceeds max chunk %d", len(payload), maxChunk))
	}
	start := len(dst)
	dst = append(dst,
		frameMagic0, frameMagic1, Version, h.Type, h.Flags, 0,
		byte(h.Replica>>8), byte(h.Replica),
		byte(uint32(h.Stage)>>24), byte(uint32(h.Stage)>>16), byte(uint32(h.Stage)>>8), byte(uint32(h.Stage)),
		byte(uint32(len(payload))>>24), byte(uint32(len(payload))>>16), byte(uint32(len(payload))>>8), byte(uint32(len(payload))),
	)
	dst = append(dst, payload...)
	crc := crc32.Checksum(dst[start:], crcTable)
	return append(dst, byte(crc>>24), byte(crc>>16), byte(crc>>8), byte(crc))
}

// parseHeader validates and decodes a 16-byte frame header, returning
// the header and the payload length.
func parseHeader(b []byte) (Header, int, error) {
	if len(b) < headerLen {
		return Header{}, 0, fmt.Errorf("transport: truncated frame header: %d bytes", len(b))
	}
	if b[0] != frameMagic0 || b[1] != frameMagic1 {
		return Header{}, 0, fmt.Errorf("transport: bad frame magic %#02x%02x", b[0], b[1])
	}
	if b[2] != Version {
		return Header{}, 0, fmt.Errorf("transport: protocol version %d, want %d", b[2], Version)
	}
	n := int(uint32(b[12])<<24 | uint32(b[13])<<16 | uint32(b[14])<<8 | uint32(b[15]))
	if n > maxFramePayload {
		return Header{}, 0, fmt.Errorf("transport: frame payload length %d exceeds limit %d", n, maxFramePayload)
	}
	h := Header{
		Type:    b[3],
		Flags:   b[4],
		Replica: uint16(b[6])<<8 | uint16(b[7]),
		Stage:   int32(uint32(b[8])<<24 | uint32(b[9])<<16 | uint32(b[10])<<8 | uint32(b[11])),
	}
	return h, n, nil
}

// DecodeFrame decodes the first frame in b, verifying magic, version,
// length bounds and the CRC trailer. It returns the header, the payload
// (a sub-slice of b) and the remainder of b after the frame. Malformed
// input returns an error; it never panics.
func DecodeFrame(b []byte) (Header, []byte, []byte, error) {
	h, n, err := parseHeader(b)
	if err != nil {
		return Header{}, nil, nil, err
	}
	total := headerLen + n + trailerLen
	if len(b) < total {
		return Header{}, nil, nil, fmt.Errorf("transport: truncated frame: have %d bytes, frame needs %d", len(b), total)
	}
	body := b[:headerLen+n]
	want := uint32(b[headerLen+n])<<24 | uint32(b[headerLen+n+1])<<16 | uint32(b[headerLen+n+2])<<8 | uint32(b[headerLen+n+3])
	if got := crc32.Checksum(body, crcTable); got != want {
		return Header{}, nil, nil, fmt.Errorf("transport: frame CRC mismatch: got %#08x, want %#08x", got, want)
	}
	return h, b[headerLen : headerLen+n], b[total:], nil
}
