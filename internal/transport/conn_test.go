package transport

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

func pipeConns() (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConn(a), NewConn(b)
}

// TestConnRoundTrip sends messages — including one large enough to
// stream as many chunks — over an in-process pipe and checks they
// reassemble exactly.
func TestConnRoundTrip(t *testing.T) {
	a, b := pipeConns()
	defer a.Close()
	defer b.Close()
	big := make([]byte, 3*maxChunk+12345) // 4 chunks
	for i := range big {
		big[i] = byte(i)
	}
	msgs := []Msg{
		{Type: MsgHello, Replica: 1, Stage: -1, Data: []byte("spec")},
		{Type: MsgSetGrads, Replica: 2, Stage: 5, Data: nil},
		{Type: MsgSetState, Replica: 3, Stage: 0, Data: big},
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, m := range msgs {
			if err := a.Send(ctx, m); err != nil {
				t.Errorf("send: %v", err)
				return
			}
		}
	}()
	for i, want := range msgs {
		got, err := b.Recv(ctx)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if got.Type != want.Type || got.Replica != want.Replica || got.Stage != want.Stage {
			t.Fatalf("recv %d: header %v/%v/%v, want %v/%v/%v",
				i, got.Type, got.Replica, got.Stage, want.Type, want.Replica, want.Stage)
		}
		if string(got.Data) != string(want.Data) {
			t.Fatalf("recv %d: %d payload bytes, want %d (or bytes differ)", i, len(got.Data), len(want.Data))
		}
	}
	wg.Wait()
}

// TestConnRecvCancel pins context propagation into a blocked read: with
// no sender, Recv must unwind with ctx.Err() when the context cancels —
// the property every blocked collective relies on to avoid deadlock.
func TestConnRecvCancel(t *testing.T) {
	a, b := pipeConns()
	defer a.Close()
	defer b.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := b.Recv(ctx)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Recv returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unwind after cancel")
	}
}

// TestConnSendCancel pins the write side: a send blocked on an unread
// pipe unwinds with ctx.Err() when the context cancels.
func TestConnSendCancel(t *testing.T) {
	a, b := pipeConns()
	defer a.Close()
	defer b.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		// Larger than any internal buffering, and nobody reads b.
		done <- a.Send(ctx, Msg{Type: MsgSetState, Stage: -1, Data: make([]byte, 4*maxChunk)})
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Send returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Send did not unwind after cancel")
	}
}

// TestConnDeadline pins that a context deadline (not just cancellation)
// bounds a blocked read.
func TestConnDeadline(t *testing.T) {
	a, b := pipeConns()
	defer a.Close()
	defer b.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := b.Recv(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Recv returned %v, want context.DeadlineExceeded", err)
	}
}

// TestTCPRoundTrip runs the same framed protocol over a real socket.
func TestTCPRoundTrip(t *testing.T) {
	lis, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	ctx := context.Background()
	done := make(chan error, 1)
	go func() {
		conn, err := lis.Accept(ctx)
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		m, err := conn.Recv(ctx)
		if err != nil {
			done <- err
			return
		}
		done <- conn.Send(ctx, m) // echo
	}()
	conn, err := NewTCPDialer(lis.Addr()).Dial(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	want := Msg{Type: MsgPrepare, Replica: 2, Stage: 3, Data: make([]byte, maxChunk+99)}
	for i := range want.Data {
		want.Data[i] = byte(i >> 3)
	}
	if err := conn.Send(ctx, want); err != nil {
		t.Fatal(err)
	}
	got, err := conn.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stage != want.Stage || string(got.Data) != string(want.Data) {
		t.Fatal("echoed message differs")
	}
	if err := <-done; err != nil {
		t.Fatalf("server: %v", err)
	}
}

// TestTCPDialerRetries pins the orchestration race the backoff exists
// for: a leader dialing before its worker listens converges once the
// listener appears, instead of failing on the first refused connection.
func TestTCPDialerRetries(t *testing.T) {
	// Reserve a port, then free it so the first dials are refused.
	lis, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr()
	lis.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	d := NewTCPDialer(addr)
	d.BaseDelay = 10 * time.Millisecond
	type result struct {
		conn MsgConn
		err  error
	}
	res := make(chan result, 1)
	go func() {
		c, err := d.Dial(ctx)
		res <- result{c, err}
	}()
	time.Sleep(100 * time.Millisecond)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer ln.Close()
	r := <-res
	if r.err != nil {
		t.Fatalf("dial did not converge after the listener appeared: %v", r.err)
	}
	r.conn.Close()
}

// TestTCPDialerGivesUp pins the other half: with no listener ever, the
// dial fails when its context expires rather than retrying forever.
func TestTCPDialerGivesUp(t *testing.T) {
	lis, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr()
	lis.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	d := NewTCPDialer(addr)
	d.BaseDelay = 10 * time.Millisecond
	if _, err := d.Dial(ctx); err == nil {
		t.Fatal("dial succeeded against a dead address")
	}
}
