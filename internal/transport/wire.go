package transport

import (
	"fmt"
	"math"

	"pipemare/internal/tensor"
)

// Payload encoding: big-endian fixed-width integers and raw IEEE-754
// float bits, composed with a panic-free cursor so malformed payloads
// surface as errors (FuzzDecodeFrame covers the frame layer; the message
// decoders below never index past their input).

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendU64(dst []byte, v uint64) []byte {
	return append(dst, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendF64(dst []byte, v float64) []byte {
	return appendU64(dst, math.Float64bits(v))
}

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// cursor reads a payload left to right, latching the first error.
type cursor struct {
	b   []byte
	err error
}

func (c *cursor) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("transport: "+format, args...)
	}
}

func (c *cursor) take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || len(c.b) < n {
		c.fail("payload truncated: need %d bytes, have %d", n, len(c.b))
		return nil
	}
	out := c.b[:n]
	c.b = c.b[n:]
	return out
}

func (c *cursor) u8() byte {
	b := c.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (c *cursor) boolean() bool { return c.u8() != 0 }

func (c *cursor) u32() uint32 {
	b := c.take(4)
	if b == nil {
		return 0
	}
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func (c *cursor) u64() uint64 {
	b := c.take(8)
	if b == nil {
		return 0
	}
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

func (c *cursor) f64() float64 { return math.Float64frombits(c.u64()) }

// i32 decodes a u32 written by appendU32(uint32(v)) back to a signed int.
func (c *cursor) i32() int { return int(int32(c.u32())) }

// count decodes a u32 element count, bounding it so a corrupt length
// cannot force a huge allocation: each element needs at least min bytes
// of remaining payload.
func (c *cursor) count(min int) int {
	n := int(c.u32())
	if c.err != nil {
		return 0
	}
	if min < 1 {
		min = 1
	}
	if n < 0 || n > len(c.b)/min {
		c.fail("payload count %d exceeds remaining %d bytes", n, len(c.b))
		return 0
	}
	return n
}

func (c *cursor) done() error {
	if c.err != nil {
		return c.err
	}
	if len(c.b) != 0 {
		return fmt.Errorf("transport: %d trailing payload bytes", len(c.b))
	}
	return nil
}

// appendTensor encodes a tensor: a dtype tag byte, rank, dims, then the
// raw IEEE-754 bits of the contiguous data at the dtype's width. The tag
// is what lets a float32 run checkpoint and all-reduce without ever
// widening to float64 on the wire.
func appendTensor(dst []byte, t *tensor.Tensor) []byte {
	dt := t.DType()
	dst = append(dst, byte(dt))
	dst = appendU32(dst, uint32(len(t.Shape)))
	for _, d := range t.Shape {
		dst = appendU32(dst, uint32(d))
	}
	if dt == tensor.Float32 {
		for _, v := range t.Data32 {
			dst = appendU32(dst, math.Float32bits(v))
		}
	} else {
		for _, v := range t.Data {
			dst = appendF64(dst, v)
		}
	}
	return dst
}

// tensorInto decodes one tensor, reusing buf when its shape and dtype
// match (the steady-state path for per-stage gradient and state traffic).
func (c *cursor) tensorInto(buf *tensor.Tensor) *tensor.Tensor {
	tag := c.u8()
	if c.err != nil {
		return nil
	}
	if tag > uint8(tensor.Float32) {
		c.fail("tensor dtype tag %d unknown", tag)
		return nil
	}
	dt := tensor.DType(tag)
	es := dt.Size()
	rank := c.count(4)
	shape := make([]int, rank)
	size := 1
	for i := range shape {
		d := int(c.u32())
		if c.err != nil {
			return nil
		}
		if d <= 0 || (size > 0 && d > len(c.b)/(es*size)+1) {
			c.fail("tensor dim %d out of range", d)
			return nil
		}
		shape[i] = d
		size *= d
	}
	if size > len(c.b)/es {
		c.fail("tensor size %d exceeds remaining payload", size)
		return nil
	}
	dst := buf
	if dst == nil || dst.DType() != dt || !sameShape(dst.Shape, shape) {
		dst = tensor.NewOf(dt, shape...)
	}
	if dt == tensor.Float32 {
		for i := 0; i < size; i++ {
			dst.Data32[i] = math.Float32frombits(c.u32())
		}
	} else {
		for i := 0; i < size; i++ {
			dst.Data[i] = c.f64()
		}
	}
	if c.err != nil {
		return nil
	}
	return dst
}

func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// appendTensors encodes a counted list of tensors.
func appendTensors(dst []byte, ts []*tensor.Tensor) []byte {
	dst = appendU32(dst, uint32(len(ts)))
	for _, t := range ts {
		dst = appendTensor(dst, t)
	}
	return dst
}

// tensorsInto decodes a counted tensor list, reusing bufs elementwise.
func (c *cursor) tensorsInto(bufs []*tensor.Tensor) []*tensor.Tensor {
	n := c.count(4)
	if c.err != nil {
		return nil
	}
	out := bufs
	if cap(out) < n {
		out = make([]*tensor.Tensor, n)
		copy(out, bufs)
	}
	out = out[:n]
	for i := 0; i < n; i++ {
		out[i] = c.tensorInto(out[i])
		if c.err != nil {
			return nil
		}
	}
	return out
}
