package transport

import (
	"fmt"
	"hash/crc32"
	"math"
	"time"

	"pipemare/internal/tensor"
)

// Spec is the handshake the leader announces in MsgHello: everything the
// worker must agree on for the distributed curves to stay bit-identical
// to the in-process ones. The worker rebuilds its follower from its own
// task and options, then verifies the spec — replica identity, topology,
// method, technique flags, commit mode, clocks, and a checksum over the
// leader's initial per-stage state — so a seed, partition or
// configuration mismatch between the processes fails the handshake
// instead of silently diverging the curves.
type Spec struct {
	Replica  int  // which follower this connection hosts (1 ≤ Replica < Replicas)
	Replicas int  // total replica count R
	Stages   int  // resolved pipeline stage count P
	Method   int  // core.Method the leader trains with
	T2       bool // whether Technique 2 state (δ, corrected) is part of stage state
	Sharded  bool // whether the optimizer commit is replica-sharded
	Step     int  // leader's optimizer step clock at handshake (0 for a fresh run)
	Epoch    int  // leader's epoch clock at handshake
	// Checksum is StateChecksum over the leader's initial per-stage
	// state; the worker's follower must hash identically.
	Checksum uint32
	// GroupCosts pins the leader's per-group partition costs so a
	// measured (profile) partition reproduces exactly on the worker.
	GroupCosts []float64
	// FT tells the worker the leader trains fault-tolerantly: followers
	// hold full optimizer moments (so stage state includes them and an
	// evicted member's shard survives on every peer).
	FT bool
	// Heartbeat is the worker→leader liveness interval during chunk
	// compute; 0 disables heartbeats.
	Heartbeat time.Duration
}

func (s Spec) encode() []byte {
	b := appendU32(nil, uint32(s.Replica))
	b = appendU32(b, uint32(s.Replicas))
	b = appendU32(b, uint32(s.Stages))
	b = appendU32(b, uint32(s.Method))
	b = appendBool(b, s.T2)
	b = appendBool(b, s.Sharded)
	b = appendU32(b, uint32(s.Step))
	b = appendU32(b, uint32(s.Epoch))
	b = appendU32(b, s.Checksum)
	b = appendU32(b, uint32(len(s.GroupCosts)))
	for _, c := range s.GroupCosts {
		b = appendF64(b, c)
	}
	b = appendBool(b, s.FT)
	b = appendU64(b, uint64(s.Heartbeat))
	return b
}

func decodeSpec(data []byte) (Spec, error) {
	c := &cursor{b: data}
	s := Spec{
		Replica:  c.i32(),
		Replicas: c.i32(),
		Stages:   c.i32(),
		Method:   c.i32(),
		T2:       c.boolean(),
		Sharded:  c.boolean(),
		Step:     c.i32(),
		Epoch:    c.i32(),
		Checksum: c.u32(),
	}
	n := c.count(8)
	if n > 0 {
		s.GroupCosts = make([]float64, n)
		for i := range s.GroupCosts {
			s.GroupCosts[i] = c.f64()
		}
	}
	s.FT = c.boolean()
	s.Heartbeat = time.Duration(c.u64())
	if err := c.done(); err != nil {
		return Spec{}, fmt.Errorf("bad hello: %w", err)
	}
	return s, nil
}

// StateSource is the per-stage state surface the checksum (and the
// leader-serial broadcast) reads. replica.Member satisfies it.
type StateSource interface {
	StageState(stage int) []*tensor.Tensor
}

// StateChecksum hashes a member's per-stage state — dtype, shapes and
// raw float bits, stage by stage — with CRC-32. Leader and worker compute
// it over their respective initial states during the handshake; equality
// means the two processes built bitwise-identical replicas. The dtype tag
// is part of the hash, so a float32 leader paired with a float64 worker
// (or vice versa) fails the handshake before any state flows.
func StateChecksum(m StateSource, stages int) uint32 {
	crc := uint32(0)
	var scratch [8]byte
	u32 := func(v uint32) {
		scratch[0], scratch[1], scratch[2], scratch[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
		crc = crc32.Update(crc, crcTable, scratch[:4])
	}
	for st := 0; st < stages; st++ {
		ts := m.StageState(st)
		u32(uint32(len(ts)))
		for _, t := range ts {
			scratch[0] = byte(t.DType())
			crc = crc32.Update(crc, crcTable, scratch[:1])
			u32(uint32(len(t.Shape)))
			for _, d := range t.Shape {
				u32(uint32(d))
			}
			if t.DType() == tensor.Float32 {
				for _, v := range t.Data32 {
					u32(math.Float32bits(v))
				}
			} else {
				for _, v := range t.Data {
					bits := math.Float64bits(v)
					for i := 0; i < 8; i++ {
						scratch[i] = byte(bits >> (56 - 8*i))
					}
					crc = crc32.Update(crc, crcTable, scratch[:8])
				}
			}
		}
	}
	return crc
}
