package transport

import (
	"context"
	"errors"
	"fmt"
	"time"

	"pipemare/internal/engine"
	"pipemare/internal/replica"
	"pipemare/internal/tensor"
)

// Builder constructs (or verifies) the worker's local follower member
// for the spec the leader announced — typically core.NewFollower over a
// task the worker rebuilt from the same seed and options as the leader.
// It runs after MsgHello, so a spec-dependent configuration (replica id,
// replica count, commit mode, pinned partition costs) needs no worker
// flags.
type Builder func(spec Spec) (replica.Member, error)

// ClockSetter is the clock-alignment surface the serve loop writes:
// MsgSync sets the follower's step clock after a full-state broadcast,
// and MsgSyncEpoch aligns its epoch clock before a sharded commit. The
// trainer's member (internal/core) satisfies it.
type ClockSetter interface {
	SetStep(step int)
	SetEpoch(epoch int)
}

// Serve accepts one leader connection on lis and serves it until the
// leader says goodbye, the connection drops, or ctx ends. inner is the
// engine that drives the follower's microbatch chunks (nil means the
// serial Reference engine) — the worker-process counterpart of the
// replicated engine's per-replica inner engines.
func Serve(ctx context.Context, lis Listener, build Builder, inner engine.Engine) error {
	conn, err := lis.Accept(ctx)
	if err != nil {
		return err
	}
	defer conn.Close()
	return ServeConn(ctx, conn, build, inner)
}

// ServeConn serves one established leader connection (see Serve).
func ServeConn(ctx context.Context, conn MsgConn, build Builder, inner engine.Engine) error {
	if inner == nil {
		inner = engine.NewReference()
	}
	s := &server{conn: conn, inner: inner}
	member, err := s.handshake(ctx, build)
	if err != nil {
		return err
	}
	return s.serve(ctx, member)
}

// serve runs the post-handshake session body — shared by the MsgHello
// path (ServeConn) and the join path (ServeJoin): wrap the member for
// chunk execution, start the inner engine's lifecycle, and enter the
// request loop.
func (s *server) serve(ctx context.Context, member replica.Member) error {
	s.member = member
	s.comp = replica.NewCompute(member)
	if lc, ok := s.inner.(engine.Lifecycle); ok {
		lc.Start(s.comp)
		defer lc.Stop()
	}
	return s.loop(ctx)
}

type server struct {
	conn   MsgConn
	inner  engine.Engine
	member replica.Member
	comp   *replica.Compute

	replica uint16
	hb      time.Duration // heartbeat interval from the leader's spec (0 = off)
	micros  [][]int       // RunChunk decode buffer
	scratch []byte        // reply encode buffer
}

func (s *server) reply(ctx context.Context, m Msg) error {
	m.Replica = s.replica
	return s.conn.Send(ctx, m)
}

func (s *server) replyErr(ctx context.Context, code uint32, text string) error {
	data := appendU32(nil, code)
	data = append(data, text...)
	return s.reply(ctx, Msg{Type: MsgErr, Stage: -1, Data: data})
}

// handshake reads MsgHello, builds the follower from the spec, verifies
// topology and the initial-state checksum, aligns the clocks, and
// acknowledges. A mismatch is reported to the leader and returned.
func (s *server) handshake(ctx context.Context, build Builder) (replica.Member, error) {
	req, err := s.conn.Recv(ctx)
	if err != nil {
		return nil, fmt.Errorf("transport: handshake: %w", err)
	}
	if req.Type != MsgHello {
		return nil, fmt.Errorf("transport: handshake: first message type %d, want hello", req.Type)
	}
	s.replica = req.Replica
	spec, err := decodeSpec(req.Data)
	if err != nil {
		s.replyErr(ctx, errGeneric, err.Error())
		return nil, fmt.Errorf("transport: handshake: %w", err)
	}
	reject := func(format string, args ...any) (replica.Member, error) {
		err := fmt.Errorf(format, args...)
		s.replyErr(ctx, errGeneric, err.Error())
		return nil, fmt.Errorf("transport: handshake: %w", err)
	}
	if spec.Replica < 1 || spec.Replica >= spec.Replicas {
		return reject("replica %d out of range for %d replicas", spec.Replica, spec.Replicas)
	}
	s.hb = spec.Heartbeat
	member, err := build(spec)
	if err != nil {
		return reject("building follower: %w", err)
	}
	if got := member.Stages(); got != spec.Stages {
		return reject("follower has %d stages, leader has %d", got, spec.Stages)
	}
	if got := StateChecksum(member, spec.Stages); got != spec.Checksum {
		return reject("initial state checksum %#08x differs from leader's %#08x (seed, task or partition mismatch)", got, spec.Checksum)
	}
	if cs, ok := member.(ClockSetter); ok {
		cs.SetStep(spec.Step)
		cs.SetEpoch(spec.Epoch)
	} else if spec.Step != 0 || spec.Epoch != 0 {
		return reject("leader clocks (step %d, epoch %d) cannot be applied: member has no clock setters", spec.Step, spec.Epoch)
	}
	if err := s.reply(ctx, Msg{Type: MsgHelloOK, Stage: -1}); err != nil {
		return nil, fmt.Errorf("transport: handshake: %w", err)
	}
	return member, nil
}

// loop is the request/response serve loop. Member operations run under a
// panic guard: a malformed message (bad stage index, wrong tensor count)
// becomes an error reply and a clean return, never a worker crash.
func (s *server) loop(ctx context.Context) error {
	for {
		req, err := s.conn.Recv(ctx)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return err
			}
			return fmt.Errorf("transport: serve: %w", err)
		}
		if req.Type == MsgBye {
			return nil
		}
		resp, fatal := s.dispatch(ctx, req)
		if fatal != nil {
			s.replyErr(ctx, errGeneric, fatal.Error())
			return fmt.Errorf("transport: serve: %w", fatal)
		}
		if err := s.reply(ctx, resp); err != nil {
			return fmt.Errorf("transport: serve: %w", err)
		}
	}
}

// dispatch handles one request, returning the reply or a fatal error.
func (s *server) dispatch(ctx context.Context, req Msg) (resp Msg, fatal error) {
	defer func() {
		if r := recover(); r != nil {
			fatal = fmt.Errorf("request type %d: %v", req.Type, r)
		}
	}()
	ack := Msg{Type: MsgAck, Stage: req.Stage}
	stage := int(req.Stage)
	c := &cursor{b: req.Data}
	switch req.Type {
	case MsgRunChunk:
		return s.runChunk(ctx, c)
	case MsgSetGrads:
		bufs := c.tensorsInto(nil)
		if err := c.done(); err != nil {
			return Msg{}, err
		}
		s.member.SetStageGrads(stage, bufs)
		return ack, nil
	case MsgPrepare:
		nMicro := c.i32()
		if err := c.done(); err != nil {
			return Msg{}, err
		}
		sumSq := s.member.PrepareStage(stage, nMicro)
		return Msg{Type: MsgPrepared, Stage: req.Stage, Data: appendF64(s.scratch[:0], sumSq)}, nil
	case MsgBeginStep:
		s.member.BeginStep()
		return ack, nil
	case MsgScale:
		scale := c.f64()
		if err := c.done(); err != nil {
			return Msg{}, err
		}
		s.member.ScaleStage(stage, scale)
		return ack, nil
	case MsgStep:
		s.member.StepStage(stage)
		return ack, nil
	case MsgFinish:
		s.member.FinishStage(stage)
		return ack, nil
	case MsgGetState:
		state := s.member.StageState(stage)
		return Msg{Type: MsgState, Stage: req.Stage, Data: appendTensors(s.scratch[:0], state)}, nil
	case MsgSetState:
		bufs := c.tensorsInto(nil)
		if err := c.done(); err != nil {
			return Msg{}, err
		}
		s.member.ImportStageState(stage, bufs)
		return ack, nil
	case MsgSetRing:
		base := c.i32()
		nSnaps := c.count(4)
		snaps := make([][]*tensor.Tensor, nSnaps)
		for i := range snaps {
			snaps[i] = c.tensorsInto(nil)
		}
		if err := c.done(); err != nil {
			return Msg{}, err
		}
		vr, ok := s.member.(replica.VersionRestorer)
		if !ok {
			return Msg{}, fmt.Errorf("member cannot restore version rings")
		}
		vr.RestoreVersions(stage, base, snaps)
		return ack, nil
	case MsgSyncEpoch:
		epoch := c.i32()
		if err := c.done(); err != nil {
			return Msg{}, err
		}
		cs, ok := s.member.(ClockSetter)
		if !ok {
			return Msg{}, fmt.Errorf("member has no epoch clock setter")
		}
		cs.SetEpoch(epoch)
		return ack, nil
	case MsgSync:
		step := c.i32()
		if err := c.done(); err != nil {
			return Msg{}, err
		}
		cs, ok := s.member.(ClockSetter)
		if !ok {
			return Msg{}, fmt.Errorf("member has no step clock setter")
		}
		cs.SetStep(step)
		return ack, nil
	}
	return Msg{}, fmt.Errorf("unknown request type %d", req.Type)
}

// runChunk decodes a chunk request, drives it through the inner engine
// against the follower's compute wrapper, and encodes the losses and
// exported gradients back. A diverged chunk replies errDiverged — a
// normal outcome the leader maps back to engine.ErrDiverged — without
// ending the session.
func (s *server) runChunk(ctx context.Context, c *cursor) (Msg, error) {
	start := c.i32()
	async := c.boolean()
	k := c.count(4)
	if cap(s.micros) < k {
		s.micros = make([][]int, k)
	}
	micros := s.micros[:k]
	for i := range micros {
		n := c.count(4)
		if cap(micros[i]) < n {
			micros[i] = make([]int, n)
		}
		micros[i] = micros[i][:n]
		for j := range micros[i] {
			micros[i][j] = c.i32()
		}
	}
	if err := c.done(); err != nil {
		return Msg{}, err
	}
	s.comp.BeginChunk(start, k, async)
	// While the chunk computes — the one long-running request — a pinger
	// streams MsgPing so the leader can tell "slow" from "hung". It is
	// stopped and joined before the reply is encoded: Conn is not safe
	// for concurrent use, so the pinger must never overlap another Send.
	stopPing := func() {}
	if s.hb > 0 {
		pctx, cancel := context.WithCancel(ctx)
		done := make(chan struct{})
		go s.ping(pctx, done)
		stopPing = func() { cancel(); <-done }
	}
	_, err := s.inner.Minibatch(ctx, s.comp, micros)
	stopPing()
	if err != nil {
		if errors.Is(err, engine.ErrDiverged) {
			data := appendU32(s.scratch[:0], errDiverged)
			return Msg{Type: MsgErr, Stage: -1, Data: data}, nil
		}
		return Msg{}, fmt.Errorf("chunk failed: %w", err)
	}
	losses := s.comp.Losses()
	grads := s.comp.Grads()
	b := appendU32(s.scratch[:0], uint32(len(losses)))
	for _, l := range losses {
		b = appendF64(b, l)
	}
	b = appendU32(b, uint32(len(grads)))
	b = appendU32(b, uint32(s.member.Stages()))
	for _, micro := range grads {
		for _, stage := range micro {
			b = appendTensors(b, stage)
		}
	}
	s.scratch = b
	return Msg{Type: MsgChunkDone, Stage: -1, Data: b}, nil
}

// ping streams heartbeats at the spec'd interval until ctx ends.
func (s *server) ping(ctx context.Context, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(s.hb)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := s.conn.Send(ctx, Msg{Type: MsgPing, Replica: s.replica, Stage: -1}); err != nil {
				return
			}
		}
	}
}
