package transport

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// TCPDialer dials a worker's TCP endpoint with exponential backoff and
// jitter, so a leader started before its workers converges instead of
// failing — the usual orchestration race. The zero delays take sensible
// defaults; the overall budget is the Dial context's deadline.
type TCPDialer struct {
	Addr string
	// BaseDelay is the first retry delay (default 50ms); each retry
	// doubles it up to MaxDelay (default 2s), plus up to 50% jitter.
	BaseDelay time.Duration
	MaxDelay  time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// NewTCPDialer returns a backoff dialer for addr.
func NewTCPDialer(addr string) *TCPDialer { return &TCPDialer{Addr: addr} }

// Dial connects, retrying with exponential backoff + jitter until ctx
// expires.
func (d *TCPDialer) Dial(ctx context.Context) (MsgConn, error) {
	base := d.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := d.MaxDelay
	if max <= 0 {
		max = 2 * time.Second
	}
	delay := base
	var nd net.Dialer
	for {
		nc, err := nd.DialContext(ctx, "tcp", d.Addr)
		if err == nil {
			if tc, ok := nc.(*net.TCPConn); ok {
				tc.SetNoDelay(true)
			}
			return NewConn(nc), nil
		}
		if ctx.Err() != nil {
			return nil, fmt.Errorf("transport: dial %s: %w", d.Addr, err)
		}
		select {
		case <-time.After(delay + d.jitter(delay/2)):
		case <-ctx.Done():
			return nil, fmt.Errorf("transport: dial %s: %w", d.Addr, err)
		}
		if delay *= 2; delay > max {
			delay = max
		}
	}
}

func (d *TCPDialer) jitter(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.rng == nil {
		d.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return time.Duration(d.rng.Int63n(int64(max)))
}

// tcpListener adapts net.Listener to the context-aware Listener surface.
type tcpListener struct {
	ln net.Listener
}

// ListenTCP listens on addr ("host:port"; port 0 picks a free port —
// read it back from Addr).
func ListenTCP(addr string) (Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &tcpListener{ln: ln}, nil
}

// Accept waits for one connection; ctx cancellation closes the wait.
func (t *tcpListener) Accept(ctx context.Context) (MsgConn, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	type result struct {
		nc  net.Conn
		err error
	}
	ch := make(chan result, 1)
	go func() {
		nc, err := t.ln.Accept()
		ch <- result{nc, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			return nil, fmt.Errorf("transport: accept: %w", r.err)
		}
		if tc, ok := r.nc.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		return NewConn(r.nc), nil
	case <-ctx.Done():
		// Leave the accept goroutine to drain: it exits when the listener
		// closes, and a late connection is closed rather than leaked.
		go func() {
			if r := <-ch; r.nc != nil {
				r.nc.Close()
			}
		}()
		return nil, ctx.Err()
	}
}

// Addr returns the bound address (with the resolved port).
func (t *tcpListener) Addr() string { return t.ln.Addr().String() }

// Close closes the listener.
func (t *tcpListener) Close() error { return t.ln.Close() }
