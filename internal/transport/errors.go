package transport

import (
	"errors"
	"time"
)

// Error taxonomy. Every failure a wire operation can surface is either
// transient — the message never reached the peer, so resending it is
// safe and changes nothing the peer observed — or fatal, meaning the
// connection's state is unknown (a reply may be lost mid-protocol) and
// the member must be evicted or the run aborted. RemoteMember retries
// transient failures with bounded deterministic backoff; everything
// else sticks.
var (
	// ErrTransient marks a failure where the request provably never left
	// this process (e.g. an injected drop before the write). Wrap it with
	// %w; IsTransient classifies.
	ErrTransient = errors.New("transient transport fault")

	// ErrPeerTimeout reports a peer that stopped heartbeating: no reply
	// and no MsgPing within the heartbeat window. The peer is presumed
	// hung or dead; the connection is unusable.
	ErrPeerTimeout = errors.New("transport: peer heartbeat timeout")
)

// IsTransient reports whether err is safe to retry: the request never
// reached the wire, so a resend is invisible to the peer.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// Retry policy for transient faults: up to retryAttempts resends with
// exponential backoff from retryBase, plus a small deterministic jitter
// derived from the member's replica id (no global RNG — retries must
// not perturb run determinism).
const (
	retryAttempts = 3
	retryBase     = 2 * time.Millisecond
)

// DefaultHeartbeat is the worker→leader liveness interval during chunk
// compute when the facade doesn't override it. The miss budget is
// heartbeatMisses intervals: a peer silent for longer is declared hung.
const (
	DefaultHeartbeat = time.Second
	heartbeatMisses  = 10
)
