package bleu

import (
	"math"
	"testing"
)

func TestPerfectMatchIs100(t *testing.T) {
	s := []int{1, 2, 3, 4, 5, 6}
	if got := Sentence(s, s); math.Abs(got-100) > 1e-9 {
		t.Fatalf("perfect match BLEU = %g, want 100", got)
	}
}

func TestNoOverlapIsZero(t *testing.T) {
	if got := Sentence([]int{1, 2, 3, 4, 5}, []int{6, 7, 8, 9, 10}); got != 0 {
		t.Fatalf("disjoint BLEU = %g, want 0", got)
	}
}

func TestMissingHighOrderNgramIsZero(t *testing.T) {
	// Unigrams match but no 4-gram does: geometric mean collapses to 0.
	cand := []int{1, 9, 2, 9, 3, 9, 4}
	ref := []int{1, 2, 3, 4, 5, 6, 7}
	if got := Sentence(cand, ref); got != 0 {
		t.Fatalf("BLEU = %g, want 0 without any 4-gram match", got)
	}
}

func TestBrevityPenalty(t *testing.T) {
	// Candidate is a correct prefix of half the reference length:
	// precisions are 1, BP = exp(1 - refLen/candLen) = exp(-1).
	ref := []int{1, 2, 3, 4, 5, 6, 7, 8}
	cand := []int{1, 2, 3, 4}
	want := 100 * math.Exp(1-8.0/4.0)
	if got := Sentence(cand, ref); math.Abs(got-want) > 1e-9 {
		t.Fatalf("BLEU = %g, want %g (brevity penalty)", got, want)
	}
}

func TestNoBrevityPenaltyWhenLonger(t *testing.T) {
	// A longer candidate fully containing the reference is penalized only
	// through precision, never through BP.
	ref := []int{1, 2, 3, 4, 5}
	cand := []int{1, 2, 3, 4, 5, 9}
	got := Sentence(cand, ref)
	// Precisions: 5/6, 4/5, 3/4, 2/3; BP = 1.
	want := 100 * math.Exp((math.Log(5.0/6)+math.Log(4.0/5)+math.Log(3.0/4)+math.Log(2.0/3))/4)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("BLEU = %g, want %g", got, want)
	}
}

func TestClippedCounts(t *testing.T) {
	// Candidate repeats a token more often than the reference: unigram
	// matches are clipped to the reference count.
	ref := []int{7, 1, 2, 3, 4, 5, 6}
	cand := []int{7, 7, 7, 7, 7, 7, 7}
	got := Sentence(cand, ref)
	if got != 0 { // no bigram matches at all
		t.Fatalf("BLEU = %g, want 0", got)
	}
	// Verify clipping directly on unigram counts.
	cc := ngramCounts(cand, 1)
	if cc["7,"] != 7 {
		t.Fatalf("candidate 7-count = %d", cc["7,"])
	}
}

func TestCorpusPoolsStatistics(t *testing.T) {
	// Corpus BLEU pools n-gram counts rather than averaging sentence BLEU:
	// a corpus of one perfect and one disjoint sentence is strictly between
	// 0 and 100.
	cands := [][]int{{1, 2, 3, 4, 5}, {9, 9, 9, 9, 9}}
	refs := [][]int{{1, 2, 3, 4, 5}, {6, 7, 8, 10, 11}}
	got := Corpus(cands, refs)
	if got <= 0 || got >= 100 {
		t.Fatalf("pooled corpus BLEU = %g, want in (0, 100)", got)
	}
}

func TestCorpusLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Corpus([][]int{{1}}, [][]int{{1}, {2}})
}

func TestEmptyCandidate(t *testing.T) {
	if got := Sentence(nil, []int{1, 2, 3}); got != 0 {
		t.Fatalf("empty candidate BLEU = %g, want 0", got)
	}
}

func TestBLEUOrdering(t *testing.T) {
	// More correct tokens in order → higher BLEU.
	ref := []int{1, 2, 3, 4, 5, 6, 7, 8}
	good := []int{1, 2, 3, 4, 5, 6, 7, 9}
	bad := []int{1, 2, 3, 4, 9, 9, 9, 9}
	if Corpus([][]int{good}, [][]int{ref}) <= Corpus([][]int{bad}, [][]int{ref}) {
		t.Fatal("BLEU must rank the closer candidate higher")
	}
}
