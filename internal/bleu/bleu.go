// Package bleu implements corpus-level BLEU (Papineni et al., 2002) with
// modified n-gram precision and brevity penalty, used to score the
// synthetic translation task exactly as the paper scores IWSLT14/WMT17.
package bleu

import (
	"fmt"
	"math"
)

// MaxOrder is the standard BLEU n-gram order.
const MaxOrder = 4

// Corpus computes corpus BLEU (0..100) for candidate token sequences
// against single references. Sequences shorter than MaxOrder simply
// contribute no higher-order n-grams.
func Corpus(candidates, references [][]int) float64 {
	if len(candidates) != len(references) {
		panic(fmt.Sprintf("bleu: %d candidates vs %d references", len(candidates), len(references)))
	}
	matches := make([]int, MaxOrder)
	totals := make([]int, MaxOrder)
	candLen, refLen := 0, 0
	for i := range candidates {
		cand, ref := candidates[i], references[i]
		candLen += len(cand)
		refLen += len(ref)
		for n := 1; n <= MaxOrder; n++ {
			cc := ngramCounts(cand, n)
			rc := ngramCounts(ref, n)
			for g, c := range cc {
				totals[n-1] += c
				if r := rc[g]; r > 0 {
					if c < r {
						matches[n-1] += c
					} else {
						matches[n-1] += r
					}
				}
			}
		}
	}
	logSum := 0.0
	for n := 0; n < MaxOrder; n++ {
		if totals[n] == 0 || matches[n] == 0 {
			return 0
		}
		logSum += math.Log(float64(matches[n]) / float64(totals[n]))
	}
	precision := math.Exp(logSum / MaxOrder)
	bp := 1.0
	if candLen < refLen && candLen > 0 {
		bp = math.Exp(1 - float64(refLen)/float64(candLen))
	}
	if candLen == 0 {
		return 0
	}
	return 100 * bp * precision
}

// Sentence computes BLEU for a single sentence pair; with single sentences
// BLEU is noisy but useful in tests.
func Sentence(candidate, reference []int) float64 {
	return Corpus([][]int{candidate}, [][]int{reference})
}

// ngramCounts returns the multiset of n-grams of s encoded as strings.
func ngramCounts(s []int, n int) map[string]int {
	out := make(map[string]int)
	for i := 0; i+n <= len(s); i++ {
		key := ""
		for j := i; j < i+n; j++ {
			key += fmt.Sprintf("%d,", s[j])
		}
		out[key]++
	}
	return out
}
