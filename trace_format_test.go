package pipemare_test

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"testing"
	"time"

	"pipemare"
	"pipemare/internal/data"
	"pipemare/internal/model"
	"pipemare/internal/optim"
)

// TestChromeTraceFormat runs a real R=2 × P=4 sharded-commit training
// run with tracing on and asserts the exported JSON is a well-formed
// Chrome trace: every event carries pid/tid/ph/name, timestamps are
// monotonic within each (pid, tid) track, durations are non-negative,
// and the compute/collective/metadata event classes are all present.
func TestChromeTraceFormat(t *testing.T) {
	build, base := traceBase()
	rec := pipemare.NewTraceRecorder()
	opts := append(append([]pipemare.Option{}, base...),
		pipemare.WithTrace(rec),
		pipemare.WithReplicas(2), pipemare.WithShardedStep(true),
		pipemare.WithEngine(replicatedEngine("reference")))
	runCurve(t, build, 2, 2, opts...)

	var buf bytes.Buffer
	if err := pipemare.WriteChromeTrace(&buf, rec); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			Pid  *int     `json:"pid"`
			Tid  *int     `json:"tid"`
			Ts   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
			Args map[string]any
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("export holds no events")
	}
	lastTs := map[[2]int]float64{}
	spans, instants, metas := 0, 0, 0
	names := map[string]bool{}
	for i, ev := range file.TraceEvents {
		if ev.Name == "" || ev.Ph == "" || ev.Pid == nil || ev.Tid == nil {
			t.Fatalf("event %d lacks a required field: %+v", i, ev)
		}
		names[ev.Name] = true
		switch ev.Ph {
		case "M":
			metas++
			continue
		case "X":
			spans++
			if ev.Dur == nil || *ev.Dur < 0 {
				t.Fatalf("span %d (%s) has no non-negative dur", i, ev.Name)
			}
		case "i":
			instants++
		default:
			t.Fatalf("event %d has unexpected phase %q", i, ev.Ph)
		}
		if ev.Ts == nil {
			t.Fatalf("event %d (%s) has no timestamp", i, ev.Name)
		}
		key := [2]int{*ev.Pid, *ev.Tid}
		if *ev.Ts < lastTs[key] {
			t.Fatalf("track (%d,%d): ts went backwards at event %d (%s): %v < %v",
				key[0], key[1], i, ev.Name, *ev.Ts, lastTs[key])
		}
		lastTs[key] = *ev.Ts
	}
	if spans == 0 || metas == 0 {
		t.Fatalf("want spans and track metadata, got %d spans, %d instants, %d metas", spans, instants, metas)
	}
	for _, want := range []string{"fwd", "bwd", "commit:step", "reduce", "process_name", "thread_name"} {
		if !names[want] {
			t.Errorf("export is missing %q events", want)
		}
	}
}

// TestTraceOverhead gates the <5% ns/epoch overhead bound behind
// PIPEMARE_TRACE_OVERHEAD=1: it is a timing assertion, meaningful only
// on the dedicated CI observability job (and far too flaky for ordinary
// developer machines running a parallel test load).
func TestTraceOverhead(t *testing.T) {
	if os.Getenv("PIPEMARE_TRACE_OVERHEAD") != "1" {
		t.Skip("set PIPEMARE_TRACE_OVERHEAD=1 to measure tracing overhead")
	}
	// A realistically-sized model: the event count per epoch is fixed by
	// the schedule (stages × microbatches × minibatches), so per-slot
	// compute must dominate the ~100ns event cost for the bound to
	// measure recording overhead rather than the workload's smallness.
	images := data.NewImages(data.ImagesConfig{Classes: 4, C: 1, H: 4, W: 4,
		Train: 96, Test: 32, Noise: 0.4, Seed: 6})
	build := func() pipemare.Task { return model.NewResNetMLP(images, 128, 4, 8) }
	base := append(methodOpts(pipemare.PipeMare),
		pipemare.WithStages(4),
		pipemare.WithBatchSize(32), pipemare.WithMicrobatches(8),
		pipemare.WithSchedule(optim.Constant(0.05)))
	epoch := func(extra ...pipemare.Option) time.Duration {
		tr, err := pipemare.New(build(), append(append([]pipemare.Option{}, base...), extra...)...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Run(context.Background(), 1); err != nil { // warm
			t.Fatal(err)
		}
		start := time.Now()
		if _, err := tr.Run(context.Background(), 4); err != nil {
			t.Fatal(err)
		}
		return time.Since(start) / 4
	}
	// Best-of-3 per arm damps scheduler noise without hiding a real
	// per-event cost, which would hit every run equally.
	best := func(f func() time.Duration) time.Duration {
		d := f()
		for i := 0; i < 2; i++ {
			if n := f(); n < d {
				d = n
			}
		}
		return d
	}
	off := best(func() time.Duration { return epoch() })
	on := best(func() time.Duration {
		return epoch(pipemare.WithTrace(pipemare.NewTraceRecorder()))
	})
	overhead := float64(on-off) / float64(off)
	t.Logf("trace off %v/epoch, on %v/epoch: overhead %.2f%%", off, on, 100*overhead)
	if overhead > 0.05 {
		t.Fatalf("tracing overhead %.2f%% exceeds the 5%% bound (off %v, on %v)", 100*overhead, off, on)
	}
}
