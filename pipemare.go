// Package pipemare is a from-scratch Go reproduction of
// "PipeMare: Asynchronous Pipeline Parallel DNN Training"
// (Yang, Zhang, Li, Ré, Aberger, De Sa — MLSYS 2021, arXiv:1910.05124).
//
// It provides, stdlib-only:
//
//   - an asynchronous pipeline-parallel training simulator with
//     microbatch-exact Table 1 delays (internal/pipeline, internal/core),
//     including the GPipe and PipeDream baselines;
//   - the three PipeMare techniques — T1 learning-rate rescheduling,
//     T2 discrepancy correction, T3 synchronous warmup — plus the
//     Appendix D recompute delay path and the Appendix E Hogwild! variant;
//   - the quadratic-model stability theory: companion-matrix
//     characteristic polynomials, Lemma 1–3 bounds, and trajectory
//     simulators (internal/quad, internal/poly);
//   - the analytic throughput and memory models of §2.2 and Appendix A
//     (internal/throughput, internal/memmodel);
//   - a small dense-tensor/neural-network substrate with decoupled
//     forward/backward weights (internal/tensor, internal/nn), optimizers
//     and schedules (internal/optim), synthetic datasets (internal/data)
//     and BLEU scoring (internal/bleu);
//   - regenerators for every table and figure of the paper's evaluation
//     (internal/experiments, cmd/pipemare-bench).
//
// This package is a thin facade over those internals so that examples and
// downstream users have a single import. See README.md for a quickstart
// and DESIGN.md for the system inventory and experiment index.
package pipemare

import (
	"pipemare/internal/core"
	"pipemare/internal/metrics"
	"pipemare/internal/optim"
	"pipemare/internal/pipeline"
	"pipemare/internal/quad"
)

// Re-exported core types: see the internal packages for full
// documentation.
type (
	// Method selects GPipe, PipeDream or PipeMare execution.
	Method = core.Method
	// Config configures a training run (stages, microbatching, T1/T2/T3).
	Config = core.Config
	// Task is a model+loss bound to an indexed dataset.
	Task = core.Task
	// Trainer drives pipeline-parallel training.
	Trainer = core.Trainer
	// Run is a recorded training curve with derived metrics.
	Run = metrics.Run
	// ParamGroup is a set of weights pinned to one pipeline stage.
	ParamGroup = pipeline.ParamGroup
	// Schedule maps optimizer steps to base learning rates.
	Schedule = optim.Schedule
	// Optimizer updates parameters with per-parameter learning rates.
	Optimizer = optim.Optimizer
)

// Training methods (Table 1).
const (
	GPipe     = core.GPipe
	PipeDream = core.PipeDream
	PipeMare  = core.PipeMare
)

// NewTrainer builds a pipeline-parallel trainer; see core.New.
func NewTrainer(task Task, opt Optimizer, sched Schedule, cfg Config) (*Trainer, error) {
	return core.New(task, opt, sched, cfg)
}

// FwdDelay returns τ_fwd = (2(P−i)+1)/N for 1-indexed stage i (Table 1).
func FwdDelay(stage1, p, n int) float64 { return pipeline.FwdDelay(stage1, p, n) }

// Lemma1Bound returns the maximal stable step size (2/λ)·sin(π/(4τ+2)) of
// fixed-delay asynchronous SGD on a quadratic with curvature λ.
func Lemma1Bound(tau int, lambda float64) float64 { return quad.Lemma1Bound(tau, lambda) }
