// Package pipemare is a from-scratch Go reproduction of
// "PipeMare: Asynchronous Pipeline Parallel DNN Training"
// (Yang, Zhang, Li, Ré, Aberger, De Sa — MLSYS 2021, arXiv:1910.05124).
//
// It provides, stdlib-only:
//
//   - an asynchronous pipeline-parallel training system with
//     microbatch-exact Table 1 delays (internal/pipeline, internal/core),
//     including the GPipe and PipeDream baselines, behind pluggable
//     execution engines (internal/engine): a single-goroutine Reference
//     simulator and a work-stealing stage-scheduler engine
//     (internal/engine/concurrent, WithWorkers) with bit-identical
//     training curves, over even, cost-balanced or profiled stage
//     partitions (WithPartition);
//   - the three PipeMare techniques — T1 learning-rate rescheduling,
//     T2 discrepancy correction, T3 synchronous warmup — plus the
//     Appendix D recompute delay path and the Appendix E Hogwild! variant;
//   - the quadratic-model stability theory: companion-matrix
//     characteristic polynomials, Lemma 1–3 bounds, and trajectory
//     simulators (internal/quad, internal/poly);
//   - the analytic throughput and memory models of §2.2 and Appendix A
//     (internal/throughput, internal/memmodel);
//   - a small dense-tensor/neural-network substrate with decoupled
//     forward/backward weights (internal/tensor, internal/nn), optimizers
//     and schedules (internal/optim), synthetic datasets (internal/data)
//     and BLEU scoring (internal/bleu);
//   - regenerators for every table and figure of the paper's evaluation
//     (internal/experiments, cmd/pipemare-bench).
//
// Build a trainer with New and functional options, then train with the
// context-aware Run:
//
//	tr, err := pipemare.New(task,
//		pipemare.WithMethod(pipemare.PipeMare),
//		pipemare.WithBatchSize(64), pipemare.WithMicrobatches(8),
//		pipemare.WithT1(480), pipemare.WithT2(0.5),
//	)
//	run, err := tr.Run(ctx, 60)
//
// This package is a thin facade over the internals so that examples and
// downstream users have a single import. See README.md for a quickstart
// and DESIGN.md for the system inventory and experiment index.
package pipemare

import (
	"pipemare/internal/core"
	"pipemare/internal/engine"
	"pipemare/internal/engine/concurrent"
	"pipemare/internal/engine/replicated"
	"pipemare/internal/metrics"
	"pipemare/internal/optim"
	"pipemare/internal/pipeline"
	"pipemare/internal/quad"
	"pipemare/internal/tensor"
)

// Re-exported core types: see the internal packages for full
// documentation.
type (
	// Method selects GPipe, PipeDream or PipeMare execution.
	Method = core.Method
	// Task is a model+loss bound to an indexed dataset.
	Task = core.Task
	// Replicable is a Task that can clone itself for data-parallel
	// replication (WithReplicas).
	Replicable = core.Replicable
	// Trainer drives pipeline-parallel training.
	Trainer = core.Trainer
	// Run is a recorded training curve with derived metrics.
	Run = metrics.Run
	// ParamGroup is a set of weights pinned to one pipeline stage.
	ParamGroup = pipeline.ParamGroup
	// PartitionMode selects how weight groups split into stages
	// (WithPartition): even by count, cost-balanced, or profiled.
	PartitionMode = pipeline.PartitionMode
	// Schedule maps optimizer steps to base learning rates.
	Schedule = optim.Schedule
	// Optimizer updates parameters with per-parameter learning rates.
	Optimizer = optim.Optimizer
	// Engine schedules a trainer's per-microbatch-slot operations onto
	// goroutines; see internal/engine.
	Engine = engine.Engine
	// DType selects the element type model state trains in (WithDType).
	DType = tensor.DType
)

// Training methods (Table 1).
const (
	GPipe     = core.GPipe
	PipeDream = core.PipeDream
	PipeMare  = core.PipeMare
)

// Partition modes (WithPartition).
const (
	PartitionEven    = pipeline.PartitionEven
	PartitionCost    = pipeline.PartitionCost
	PartitionProfile = pipeline.PartitionProfile
)

// Element dtypes (WithDType).
const (
	Float64 = tensor.Float64
	Float32 = tensor.Float32
)

// NewReferenceEngine returns the default single-goroutine engine, the
// semantic ground truth every other engine is pinned against.
func NewReferenceEngine() Engine { return engine.NewReference() }

// NewConcurrentEngine returns the work-stealing stage-scheduler engine:
// `workers` goroutines (0 = min(P, GOMAXPROCS)) drain per-stage run
// queues with up to P microbatch chains in flight, committing the
// optimizer step stage-parallel. Curves are bit-identical to Reference
// for every worker count; see internal/engine/concurrent.
func NewConcurrentEngine(workers int) Engine {
	return concurrent.New(concurrent.WithWorkers(workers))
}

// NewReplicatedEngine returns the multi-replica data-parallel engine for
// WithReplicas(R > 1): each replica's share of a minibatch runs through
// its own inner engine built by the factory (nil means Reference), so
// pipeline overlap composes with replication. Curves stay bit-identical
// to single-replica Reference runs; see internal/engine/replicated.
func NewReplicatedEngine(inner func() Engine) Engine {
	if inner == nil {
		return replicated.New()
	}
	return replicated.New(replicated.WithInner(inner))
}

// FwdDelay returns τ_fwd = (2(P−i)+1)/N for 1-indexed stage i (Table 1).
func FwdDelay(stage1, p, n int) float64 { return pipeline.FwdDelay(stage1, p, n) }

// Lemma1Bound returns the maximal stable step size (2/λ)·sin(π/(4τ+2)) of
// fixed-delay asynchronous SGD on a quadratic with curvature λ.
func Lemma1Bound(tau int, lambda float64) float64 { return quad.Lemma1Bound(tau, lambda) }
