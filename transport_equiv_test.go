package pipemare_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"pipemare"
	"pipemare/internal/data"
	"pipemare/internal/engine/concurrent"
	"pipemare/internal/model"
	"pipemare/internal/optim"
)

// startWorkers launches one ServeFollower goroutine per follower replica
// over loopback transports and returns the dialers for WithTransport, a
// cancel that kills the workers, and a wait that collects their exit
// errors (nil after a clean leader goodbye).
// opts is a factory so every worker owns its options — engine instances
// in particular must not be shared across worker goroutines.
func startWorkers(t *testing.T, n int, build func() pipemare.Task, opts func() []pipemare.Option) (dialers []pipemare.Dialer, kill func(), wait func() []error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		lis, dial := pipemare.Loopback()
		dialers = append(dialers, dial)
		wg.Add(1)
		go func(i int, lis pipemare.Listener) {
			defer wg.Done()
			errs[i] = pipemare.ServeFollower(ctx, lis, build(), opts()...)
		}(i, lis)
	}
	return dialers, cancel, func() []error {
		wg.Wait()
		cancel()
		return errs
	}
}

// transportGrid pins satellite coverage for the wire transport: for
// R ∈ {2, 4} replicas × both inner engines × both commit modes, a leader
// whose followers live behind the loopback wire — every collective
// crossing a serialization boundary — must train the all-techniques DNN
// bit-identically to a single-replica Reference run. The worker processes
// rebuild the follower from the same task constructor; the handshake
// checksum proves the builds matched.
func TestTransportLoopbackMatchesReference(t *testing.T) {
	images := data.NewImages(data.ImagesConfig{Classes: 4, C: 1, H: 4, W: 4,
		Train: 96, Test: 32, Noise: 0.4, Seed: 6})
	build := func() pipemare.Task { return model.NewResNetMLP(images, 10, 4, 8) }
	base := append(methodOpts(pipemare.PipeMare),
		pipemare.WithStages(4),
		pipemare.WithBatchSize(32), pipemare.WithMicrobatches(8),
		pipemare.WithSchedule(optim.Constant(0.05)))
	ref := runCurve(t, build, 3, 1, base...)
	rs, inners := replicaGrid()
	for _, r := range rs {
		for _, inner := range inners {
			for _, sharded := range []bool{false, true} {
				name := fmt.Sprintf("loopback/R=%d/%s/sharded=%t", r, inner, sharded)
				workerOpts := func() []pipemare.Option {
					o := append([]pipemare.Option{}, base...)
					if inner == "concurrent" {
						o = append(o, pipemare.WithEngine(concurrent.New(concurrent.WithWorkers(2))))
					}
					return o
				}
				dialers, kill, wait := startWorkers(t, r-1, build, workerOpts)
				leaderOpts := append(append([]pipemare.Option{}, base...),
					pipemare.WithReplicas(r), pipemare.WithShardedStep(sharded),
					pipemare.WithEngine(replicatedEngine(inner)),
					pipemare.WithTransport(dialers...))
				tr, err := pipemare.New(build(), leaderOpts...)
				if err != nil {
					kill()
					t.Fatalf("%s: %v", name, err)
				}
				if tr.Replicas() != r {
					t.Fatalf("%s: trainer owns %d replicas, want %d", name, tr.Replicas(), r)
				}
				got, err := tr.Run(context.Background(), 3)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if err := tr.Close(); err != nil {
					t.Fatalf("%s: close: %v", name, err)
				}
				for i, werr := range wait() {
					if werr != nil {
						t.Fatalf("%s: worker %d: %v", name, i+1, werr)
					}
				}
				requireIdentical(t, name, ref, got)
			}
		}
	}
}

// TestTransportDivergencePassesThrough pins the errDiverged wire path: a
// divergence inside a remote worker's chunk must surface as the normal
// divergence outcome — the leader records the Reference divergence curve
// exactly, the worker session stays healthy, and shutdown is clean.
func TestTransportDivergencePassesThrough(t *testing.T) {
	build := func() pipemare.Task { return newQuadTask(4, 32, 8, 7) }
	base := []pipemare.Option{
		pipemare.WithMethod(pipemare.PipeMare),
		pipemare.WithBatchSize(8), pipemare.WithMicrobatches(4),
		pipemare.WithSeed(2), pipemare.WithLossCap(10),
		pipemare.WithSchedule(optim.Constant(5)), // absurd rate: diverges
	}
	ref := runCurve(t, build, 4, 1, base...)
	if !ref.Diverged {
		t.Fatal("reference run was expected to diverge")
	}
	dialers, kill, wait := startWorkers(t, 1, build, func() []pipemare.Option { return base })
	defer kill()
	tr, err := pipemare.New(build(), append(append([]pipemare.Option{}, base...),
		pipemare.WithTransport(dialers...))...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tr.Run(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	for i, werr := range wait() {
		if werr != nil {
			t.Fatalf("worker %d: %v", i+1, werr)
		}
	}
	requireIdentical(t, "transport-divergence", ref, got)
}

// TestTransportWorkerDeathSurfacesCleanly pins satellite error surfacing
// end to end: killing a worker between epochs makes Trainer.Run return a
// wrapped transport error naming the replica — no hang, no panic — and
// the trainer still closes.
func TestTransportWorkerDeathSurfacesCleanly(t *testing.T) {
	build := func() pipemare.Task { return newQuadTask(4, 32, 8, 9) }
	base := []pipemare.Option{
		pipemare.WithMethod(pipemare.PipeMare),
		pipemare.WithBatchSize(8), pipemare.WithMicrobatches(4),
		pipemare.WithSeed(3),
		pipemare.WithSchedule(optim.Constant(0.05)),
	}
	dialers, kill, wait := startWorkers(t, 1, build, func() []pipemare.Option { return base })
	var once sync.Once
	tr, err := pipemare.New(build(), append(append([]pipemare.Option{}, base...),
		pipemare.WithTransport(dialers...),
		pipemare.WithObserver(func(epochs int, run *pipemare.Run) {
			// The worker dies after the first epoch, mid-run.
			once.Do(kill)
		}))...)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := tr.Run(context.Background(), 50)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Run succeeded although its worker died mid-run")
		}
		if !strings.Contains(err.Error(), "replica 1") {
			t.Fatalf("Run error %q does not name the failed replica", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run hung after its worker died")
	}
	wait()
	tr.Close()
}

// TestWithTransportValidation pins the option's error paths.
func TestWithTransportValidation(t *testing.T) {
	build := func() pipemare.Task { return newQuadTask(4, 32, 8, 9) }
	_, dial := pipemare.Loopback()
	// Dialer count must be exactly R-1.
	if _, err := pipemare.New(build(),
		pipemare.WithReplicas(3), pipemare.WithTransport(dial),
		pipemare.WithBatchSize(8), pipemare.WithMicrobatches(4)); err == nil ||
		!strings.Contains(err.Error(), "exactly R-1") {
		t.Fatalf("mismatched dialer count: err = %v", err)
	}
	if err := func() error {
		_, err := pipemare.New(build(), pipemare.WithTransport())
		return err
	}(); err == nil || !strings.Contains(err.Error(), "at least one dialer") {
		t.Fatalf("empty WithTransport: err = %v", err)
	}
	// A follower must not itself dial followers.
	lis, _ := pipemare.Loopback()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := pipemare.ServeFollower(ctx, lis, build(), pipemare.WithTransport(dial)); err == nil ||
		!strings.Contains(err.Error(), "leader option") {
		t.Fatalf("ServeFollower with WithTransport: err = %v", err)
	}
}
